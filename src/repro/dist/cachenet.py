"""The shared result store over the wire: any node's hit is every
node's hit.

:class:`CacheServer` fronts one :class:`~repro.runtime.cache
.ResultCache` (the coordinator's — usually the same directory a local
``repro batch --cache-dir`` run would use) with a tiny frame protocol::

    {"op": "get",  "key": <sha256>}            -> {"ok": true, "payload": ...}
    {"op": "put",  "key": <sha256>, "payload"} -> {"ok": true}
    {"op": "stats"}                            -> {"ok": true, "stats": ...}
    {"op": "ping"}                             -> {"ok": true}

Keys are exactly the local cache keys (:func:`repro.runtime.cache
.cache_key`), so a distributed run and a single-host run share entries
bidirectionally.  One lock serializes cache access — correctness over
concurrency; the store is an accelerator, not a hot path.

``get``/``put`` frames may carry an ``"ns"`` field naming a cache
*namespace* (e.g. ``"submemo"`` for the sub-ISF computed table); the
server lazily fronts one :class:`ResultCache` per namespace, all
sharing the primary cache's root directory.  Frames without ``ns``
address the primary (job) cache, so old clients keep working.

:class:`RemoteCache` is the node-side client: a
:class:`~repro.runtime.cache.ResultCache` subclass whose lookup ladder
is *memory LRU -> remote get* (read-through) and whose
:meth:`~RemoteCache.put` enqueues to a background writer thread
(write-behind) — job latency never waits on the store.  Every network
failure is contained the way local cache failures are: a failed fetch
is a miss, a failed write-behind is a counted skipped write, and the
job proceeds either way.  Client get frames route through the
``cache.fetch`` fault site.
"""

from __future__ import annotations

import socket
import threading
from collections import deque
from typing import Any, Dict, Optional

import re

from repro.dist.wire import WireError, connect, recv_frame, send_frame
from repro.faults import FaultInjected
from repro.runtime.cache import DEFAULT_NAMESPACE, ResultCache

#: Namespace names accepted over the wire — a closed alphabet so a
#: malicious or corrupt frame can never name a path outside the root.
_NS_RE = re.compile(r"^[A-Za-z0-9_-]{1,32}$")

#: Default socket timeout for cache client I/O (seconds) — a stuck
#: store must read as a miss quickly, not stall the whole node.
CLIENT_TIMEOUT_S = 5.0


class CacheServer:
    """Serve a :class:`ResultCache` to remote nodes over TCP.

    ``start`` binds and spawns the accept loop; ``close`` stops it and
    joins the handler threads.  ``served`` counters (gets/puts/hits)
    feed the coordinator's dist stats.
    """

    def __init__(self, cache: ResultCache, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.cache = cache
        self.host = host
        self.port = port
        self._lock = threading.Lock()
        self._sock: Optional[socket.socket] = None
        self._threads: list = []
        self._conns: set = set()
        self._closing = False
        self.counters = {"gets": 0, "hits": 0, "puts": 0, "errors": 0}
        #: Extra namespaces fronted on demand, all under the primary
        #: cache's root (``{"submemo": ResultCache, ...}``).
        self._extra: Dict[str, ResultCache] = {}

    def start(self) -> "CacheServer":
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self.host, self.port))
        sock.listen(32)
        self.port = sock.getsockname()[1]
        self._sock = sock
        thread = threading.Thread(target=self._accept_loop,
                                  name="repro-cachenet-accept", daemon=True)
        thread.start()
        self._threads.append(thread)
        return self

    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return  # closed
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._lock:
                self._conns.add(conn)
            thread = threading.Thread(target=self._serve, args=(conn,),
                                      name="repro-cachenet-conn",
                                      daemon=True)
            thread.start()
            self._threads.append(thread)

    def _serve(self, conn: socket.socket) -> None:
        try:
            while True:
                try:
                    request = recv_frame(conn)
                except WireError:
                    # A torn/corrupted request poisons only this
                    # connection; the client re-connects and retries.
                    with self._lock:
                        self.counters["errors"] += 1
                    return
                if request is None:
                    return
                send_frame(conn, self._reply(request))
        except OSError:
            pass  # client went away mid-reply; nothing to clean up
        finally:
            with self._lock:
                self._conns.discard(conn)
            conn.close()

    def _cache_for(self, request: Dict[str, Any]) \
            -> Optional[ResultCache]:
        """The addressed namespace's cache; ``None`` for a bad name."""
        ns = request.get("ns")
        if ns is None or ns == self.cache.namespace:
            return self.cache
        if not isinstance(ns, str) or not _NS_RE.match(ns):
            return None
        store = self._extra.get(ns)
        if store is None:
            try:
                store = ResultCache(self.cache.root, memory_limit=0,
                                    namespace=ns)
            except (ValueError, OSError):
                return None
            self._extra[ns] = store
        return store

    def _reply(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request.get("op")
        with self._lock:
            if op in ("get", "put"):
                cache = self._cache_for(request)
                if cache is None:
                    self.counters["errors"] += 1
                    return {"ok": False, "error": "bad namespace"}
            if op == "get":
                self.counters["gets"] += 1
                payload = cache.get(str(request.get("key")))
                if payload is not None:
                    self.counters["hits"] += 1
                return {"ok": True, "payload": payload}
            if op == "put":
                payload = request.get("payload")
                if isinstance(payload, dict):
                    self.counters["puts"] += 1
                    cache.put(str(request.get("key")), payload)
                    return {"ok": True}
                self.counters["errors"] += 1
                return {"ok": False, "error": "put without payload"}
            if op == "stats":
                reply = {"ok": True, "stats": self.cache.counter_stats(),
                         "served": dict(self.counters)}
                if self._extra:
                    reply["namespaces"] = {
                        ns: store.counter_stats()
                        for ns, store in sorted(self._extra.items())}
                return reply
            if op == "ping":
                return {"ok": True}
            self.counters["errors"] += 1
            return {"ok": False, "error": f"unknown op {op!r}"}

    def close(self) -> None:
        self._closing = True
        if self._sock is not None:
            # shutdown() first: close() alone does not wake a thread
            # blocked in accept() on the listener.
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._sock.close()
            except OSError:
                pass
        # Unblock handler threads parked in recv_frame on live client
        # connections — otherwise each join below burns its timeout.
        with self._lock:
            live = list(self._conns)
        for conn in live:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        for thread in self._threads:
            thread.join(timeout=2.0)


class RemoteCache(ResultCache):
    """Read-through / write-behind client for a :class:`CacheServer`.

    The lookup ladder is memory LRU -> remote get; there is no local
    disk tier (the shared store *is* the disk).  ``get`` keeps the base
    class's hit/miss counters and latency windows — the hit percentiles
    of a node therefore measure what a *remote* hit costs, which is the
    number the remote-vs-local satellite exists to surface.  Writes are
    queued to a background thread and never block a job; ``flush``
    drains the queue (the node calls it before reporting a result so a
    stolen duplicate on another node sees the entry).
    """

    def __init__(self, host: str, port: int,
                 memory_limit: int = 256,
                 timeout: float = CLIENT_TIMEOUT_S,
                 namespace: str = DEFAULT_NAMESPACE) -> None:
        # root points at a path never created: the disk-tier methods
        # (iter_files/disk_stats) see an empty store, and _lookup below
        # never touches it.
        super().__init__(root="/nonexistent/repro-remote-cache",
                         memory_limit=memory_limit, namespace=namespace)
        self.host = host
        self.port = port
        self.timeout = timeout
        self.remote_hits = 0
        self.remote_misses = 0
        #: Fetches that failed (socket error, injected fault, protocol
        #: violation) and were served as misses.
        self.fetch_errors = 0
        #: Node job threads share one RemoteCache; the base class's LRU
        #: is only safe single-threaded, so memory-tier ops lock here.
        self._mem_lock = threading.RLock()
        self._get_lock = threading.Lock()
        self._get_sock: Optional[socket.socket] = None
        self._queue: "deque" = deque()
        self._wakeup = threading.Condition()
        self._closing = False
        self._writer = threading.Thread(target=self._write_behind,
                                        name="repro-cachenet-writer",
                                        daemon=True)
        self._writer.start()

    # -- read-through ---------------------------------------------------

    def _lookup(self, key: str) -> Optional[Dict[str, Any]]:
        with self._mem_lock:
            cached = self._lru.get(key)
            if cached is not None:
                self._lru.move_to_end(key)
                self.hits += 1
                return cached
        payload = self._fetch(key)
        if payload is None:
            self.misses += 1
            return None
        with self._mem_lock:
            self._remember(key, payload)
        self.hits += 1
        return payload

    def _frame(self, op: str, key: str) -> Dict[str, Any]:
        frame: Dict[str, Any] = {"op": op, "key": key}
        if self.namespace != DEFAULT_NAMESPACE:
            frame["ns"] = self.namespace
        return frame

    def _fetch(self, key: str) -> Optional[Dict[str, Any]]:
        with self._get_lock:
            try:
                sock = self._connected_get_sock()
                send_frame(sock, self._frame("get", key),
                           site="cache.fetch")
                reply = recv_frame(sock)
            except (OSError, WireError, FaultInjected, MemoryError):
                self._drop_get_sock()
                self.fetch_errors += 1
                return None
            if reply is None:
                self._drop_get_sock()
                self.fetch_errors += 1
                return None
        payload = reply.get("payload")
        if isinstance(payload, dict):
            self.remote_hits += 1
            return payload
        self.remote_misses += 1
        return None

    def _connected_get_sock(self) -> socket.socket:
        if self._get_sock is None:
            self._get_sock = connect(self.host, self.port,
                                     timeout=self.timeout)
        return self._get_sock

    def _drop_get_sock(self) -> None:
        if self._get_sock is not None:
            try:
                self._get_sock.close()
            except OSError:
                pass
            self._get_sock = None

    # -- write-behind ---------------------------------------------------

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Remember locally, enqueue the remote write; never blocks."""
        with self._mem_lock:
            self._remember(key, payload)
        with self._wakeup:
            self._queue.append((key, payload))
            self._wakeup.notify()

    def _write_behind(self) -> None:
        sock: Optional[socket.socket] = None
        while True:
            with self._wakeup:
                while not self._queue and not self._closing:
                    self._wakeup.wait()
                if self._closing and not self._queue:
                    break
                key, payload = self._queue.popleft()
            try:
                if sock is None:
                    sock = connect(self.host, self.port,
                                   timeout=self.timeout)
                frame = self._frame("put", key)
                frame["payload"] = payload
                send_frame(sock, frame)
                if recv_frame(sock) is None:
                    raise WireError("cache server closed on put")
            except (OSError, WireError, MemoryError):
                # Skipped write, same contract as a local write error:
                # the result stays correct, the shared entry is absent.
                if sock is not None:
                    try:
                        sock.close()
                    except OSError:
                        pass
                    sock = None
                self.write_errors += 1
            with self._wakeup:
                self._wakeup.notify_all()  # flush() waiters re-check
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def flush(self, timeout: float = CLIENT_TIMEOUT_S) -> bool:
        """Wait until the write-behind queue drains (or ``timeout``)."""
        import time
        deadline = time.monotonic() + timeout
        with self._wakeup:
            while self._queue:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._wakeup.wait(remaining)
        return True

    def close(self) -> None:
        self.flush()
        with self._wakeup:
            self._closing = True
            self._wakeup.notify_all()
        self._writer.join(timeout=2.0)
        with self._get_lock:
            self._drop_get_sock()

    def counter_stats(self) -> Dict[str, Any]:
        data = super().counter_stats()
        data.update(remote_hits=self.remote_hits,
                    remote_misses=self.remote_misses,
                    fetch_errors=self.fetch_errors,
                    pending_writes=len(self._queue))
        return data


__all__ = ["CacheServer", "RemoteCache", "CLIENT_TIMEOUT_S"]
