"""``repro dist serve-node``: one worker node of a distributed batch.

A node is deliberately thin: it accepts a coordinator session, receives
jobs one frame at a time, and runs **each job through a local
:class:`~repro.runtime.scheduler.BatchScheduler`** (``workers=1``, one
scheduler per job, up to ``workers`` concurrently via a thread pool).
That reuse is the whole point — the node inherits the exact
timeout/hang/crash/degrade failure ladder and produces the exact
:meth:`~repro.runtime.scheduler.JobResult.as_dict` row shape of a
single-host run, so the coordinator's merged output is byte-identical
by construction, not by reimplementation.

Session protocol (all frames :mod:`repro.dist.wire`)::

    coordinator -> node   {"op": "hello", "scheduler": {...},
                           "cache": {"host", "port"} | null}
    node -> coordinator   {"op": "hello", "ok": true, "workers": W}
    coordinator -> node   {"op": "job", "index": i, "job": {...}}   (many)
    node -> coordinator   {"op": "event", "index": i, "event": {...}}
    node -> coordinator   {"op": "result", "index": i, "row": {...}}
    coordinator -> node   {"op": "bye"}  (or just EOF)

A node can also dial *out*: ``serve-node --join host:port`` registers
with a running coordinator's membership listener instead of waiting to
be dialed — that is how a late node joins a batch already in flight::

    node -> coordinator   {"op": "join", "workers": W,
                           "node_id": "..."}
    coordinator -> node   {"op": "hello", "ok": true, "cache": ...,
                           "scheduler": ...}    (then the same session)

``node_id`` is stable across reconnects (default ``hostname-pid``): a
node whose link dropped mid-batch rejoins under bounded seeded-jitter
backoff and re-registers *in place* — its stale claims were already
reassigned at loss time, and any row that raced through anyway is
deduped by the coordinator's first-claim-wins index map.  An explicit
``bye`` ends the join loop (the batch drained); a torn link re-enters
it.

With a ``cache`` advertised, the node attaches a
:class:`~repro.dist.cachenet.RemoteCache` to every job's scheduler:
hits skip execution exactly as locally, and results write behind to the
shared store (flushed before the result frame ships, so a stolen
duplicate landing on another node dedupes on its cache key).

Chaos sites: ``node.loss`` fires on every job receipt — its ``crash``
kind is ``os._exit``, a *real* node death the coordinator must survive;
``shard.rpc`` wraps every frame the node sends, so injected corruption
surfaces coordinator-side as a wire error (= lost node, jobs
reassigned).  ``node.join`` wraps the first registration frame and
``node.reconnect`` every re-registration, so chaos on the membership
path is contained by the same bounded-retry loop that absorbs a slow
coordinator.  Either way the distributed run completes.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional

from repro import faults
from repro.dist.cachenet import RemoteCache
from repro.dist.wire import (
    WireError,
    backoff_rng,
    connect,
    recv_frame,
    retry_backoff,
    send_frame,
)
from repro.runtime.pool import ProgressEvent, resolve_workers
from repro.runtime.scheduler import BatchScheduler

#: Handshake budget when dialing a coordinator to join.
JOIN_HANDSHAKE_TIMEOUT_S = 10.0


def wire_source(job: Dict[str, Any]) -> Dict[str, Any]:
    """Rewrite a job's source to its shipped ``wire`` payload.

    Nodes must not need the coordinator's filesystem (a ``pla:`` path
    manifest entry names a file only the coordinator has), so when the
    coordinator attached a wire dump the node builds from *that*.  The
    original label is kept so result rows stay byte-identical to a
    single-host run.
    """
    if not job.get("wire"):
        return job
    from repro.runtime.jobspec import source_label
    rewritten = dict(job)
    rewritten["source"] = {"kind": "wire", "data": job["wire"],
                           "label": source_label(job["source"])}
    return rewritten


class NodeServer:
    """Accept coordinator sessions and execute shipped jobs locally."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 workers: Optional[int] = None,
                 timeout: Optional[float] = None, retries: int = 1,
                 heartbeat_s: Optional[float] = 1.0,
                 hang_grace_s: Optional[float] = None,
                 node_id: Optional[str] = None,
                 join_tries: int = 5, join_backoff_s: float = 0.5,
                 backoff_seed: int = 0) -> None:
        self.host = host
        self.port = port
        self.workers, _ = resolve_workers(workers)
        self.timeout = timeout
        self.retries = retries
        self.heartbeat_s = heartbeat_s
        self.hang_grace_s = hang_grace_s
        #: Stable identity across reconnects — the coordinator keys its
        #: membership map on this, so a rejoin lands on the same link.
        self.node_id = node_id or f"{socket.gethostname()}-{os.getpid()}"
        self.join_tries = max(1, join_tries)
        self.join_backoff_s = join_backoff_s
        self.backoff_seed = backoff_seed
        self._sock: Optional[socket.socket] = None
        self._closing = False

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "NodeServer":
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self.host, self.port))
        sock.listen(4)
        self.port = sock.getsockname()[1]
        self._sock = sock
        return self

    def serve_forever(self) -> None:
        """Sessions run one at a time; a node serves one coordinator."""
        if self._sock is None:
            self.start()
        while not self._closing:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return  # closed
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            try:
                self._session(conn)
            except Exception:  # noqa: BLE001 — a poisoned session (e.g.
                pass  # an injected node.loss raise) must not kill the
                # node: the dropped connection is the whole signal the
                # coordinator needs, and the node can serve again.
            finally:
                conn.close()

    def close(self) -> None:
        self._closing = True
        if self._sock is not None:
            # shutdown() first so a serve_forever() thread parked in
            # accept() wakes up instead of blocking past close().
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._sock.close()
            except OSError:
                pass

    # -- join mode ------------------------------------------------------

    def serve_join(self, coord_host: str, coord_port: int) -> bool:
        """Dial a coordinator's membership listener and serve it.

        Registers (``node.join`` site), runs the ordinary session, and
        on a torn link re-registers (``node.reconnect`` site) under
        bounded seeded-jitter backoff — ``join_tries`` consecutive
        failures end the loop.  Returns ``True`` when the session ended
        with an explicit ``bye`` (batch drained), ``False`` when the
        retry budget ran out without one.
        """
        rng = backoff_rng(self.backoff_seed, f"join:{self.node_id}")
        registrations = 0
        failures = 0
        while not self._closing:
            site = "node.join" if registrations == 0 else "node.reconnect"
            conn = None
            try:
                conn = connect(coord_host, coord_port,
                               timeout=JOIN_HANDSHAKE_TIMEOUT_S)
                conn.settimeout(JOIN_HANDSHAKE_TIMEOUT_S)
                # The membership fault site: a crash kind here is a
                # node dying mid-registration, a raise/corrupt kind a
                # poisoned join frame — all absorbed by this loop.
                send_frame(conn, {"op": "join", "workers": self.workers,
                                  "node_id": self.node_id}, site=site)
                hello = recv_frame(conn)
                if (not isinstance(hello, dict)
                        or hello.get("op") != "hello"
                        or not hello.get("ok")):
                    detail = (hello or {}).get("error", "bad hello") \
                        if isinstance(hello, dict) else "connection closed"
                    raise WireError(f"join refused: {detail}")
                conn.settimeout(None)
            except (OSError, WireError, faults.FaultInjected,
                    MemoryError):
                # MemoryError included: an oom-poisoned registration
                # must cost a retry, not the whole join loop.
                if conn is not None:
                    try:
                        conn.close()
                    except OSError:
                        pass
                failures += 1
                if failures >= self.join_tries:
                    return False
                time.sleep(retry_backoff(failures, self.join_backoff_s,
                                         rng))
                continue
            registrations += 1
            failures = 0  # a successful registration resets the budget
            saw_bye = False
            try:
                saw_bye = self._serve(conn, hello, greet=False)
            except Exception:  # noqa: BLE001 — same containment as
                pass  # accept mode: a poisoned session must not kill
                # the node; the dropped link is the whole signal.
            finally:
                try:
                    conn.close()
                except OSError:
                    pass
            if saw_bye:
                return True
            # Torn link mid-batch: our claims are being reassigned
            # coordinator-side; rejoin and keep serving.
            failures += 1
            if failures >= self.join_tries:
                return False
            time.sleep(retry_backoff(failures, self.join_backoff_s, rng))
        return False

    # -- one coordinator session ---------------------------------------

    def _session(self, conn: socket.socket) -> None:
        try:
            hello = recv_frame(conn)
        except (WireError, OSError):
            return
        if not isinstance(hello, dict) or hello.get("op") != "hello":
            return
        self._serve(conn, hello, greet=True)

    def _serve(self, conn: socket.socket, hello: Dict[str, Any],
               greet: bool) -> bool:
        """The job loop shared by accept mode and join mode.

        ``greet`` sends the accept-mode hello reply (join mode already
        advertised its workers in the join frame).  Returns ``True``
        when the coordinator said an explicit ``bye`` — join mode uses
        that to tell a drained batch from a torn link.
        """
        send_lock = threading.Lock()
        alive = threading.Event()
        alive.set()

        def send(message: Dict[str, Any]) -> None:
            # shard.rpc wraps every node->coordinator frame; any
            # injected or real failure here means the coordinator can
            # no longer hear us, which *is* node loss from its side —
            # stop sending, and close the link so the coordinator's
            # reader sees EOF and reassigns (a mute node with an open
            # connection would stall the batch forever).
            if not alive.is_set():
                return
            try:
                with send_lock:
                    send_frame(conn, message, site="shard.rpc")
            except (OSError, WireError, faults.FaultInjected):
                alive.clear()
                try:
                    conn.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass

        cache = self._make_cache(hello.get("cache"))
        scheduler_cfg = hello.get("scheduler") or {}
        if greet:
            send({"op": "hello", "ok": True, "workers": self.workers})
        pool = ThreadPoolExecutor(max_workers=self.workers,
                                  thread_name_prefix="repro-dist-job")
        saw_bye = False
        try:
            while alive.is_set():
                try:
                    frame = recv_frame(conn)
                except (WireError, OSError):
                    break
                if frame is None:
                    break
                if frame.get("op") == "bye":
                    saw_bye = True
                    break
                if frame.get("op") != "job":
                    continue
                # The whole-node death site: a crash kind here is
                # os._exit — the process vanishes mid-shard, which is
                # exactly the loss the coordinator must tolerate.
                faults.fault_point("node.loss")
                pool.submit(self._run_job, int(frame["index"]),
                            dict(frame["job"]), scheduler_cfg, cache,
                            send)
        finally:
            pool.shutdown(wait=True)
            if cache is not None:
                cache.close()
        return saw_bye

    def _make_cache(self,
                    spec: Optional[Dict[str, Any]]) -> Optional[RemoteCache]:
        if not spec:
            return None
        # Job workers forked by the per-job scheduler read this env to
        # attach the shared store as their sub-ISF memo's remote layer
        # (:mod:`repro.decomp.submemo`): one node's decomposition of a
        # subfunction becomes every node's splice.  Rows stay identical
        # either way — splices replay the recorded stats deltas.
        os.environ.setdefault(
            "REPRO_SUBMEMO_REMOTE", f"{spec['host']}:{spec['port']}")
        return RemoteCache(str(spec["host"]), int(spec["port"]))

    def _run_job(self, index: int, job: Dict[str, Any],
                 cfg: Dict[str, Any], cache: Optional[RemoteCache],
                 send) -> None:
        """One job through the full local failure ladder."""
        scheduler = BatchScheduler(
            workers=1,
            timeout=cfg.get("timeout", self.timeout),
            retries=int(cfg.get("retries", self.retries)),
            cache=cache,
            degrade=bool(cfg.get("degrade", True)),
            heartbeat_s=cfg.get("heartbeat_s", self.heartbeat_s),
            hang_grace_s=cfg.get("hang_grace_s", self.hang_grace_s))

        def relay(event: ProgressEvent) -> None:
            data = event.as_dict()
            data["index"] = index  # the manifest index, not the local 0
            send({"op": "event", "index": index, "event": data})

        try:
            results = scheduler.run([wire_source(job)], on_event=relay)
            row = results[0].as_dict()
        except Exception as exc:  # noqa: BLE001 — a node never dies on a job
            row = {"job_id": job.get("job_id", "?"), "source": "?",
                   "flow": job.get("flow", "map"), "status": "failed",
                   "cache_hit": False, "degraded": False, "index": index,
                   "queue_wait_s": 0.0, "exec_s": 0.0, "retries": 0,
                   "beats": 0, "hung": False, "result": None,
                   "error": f"node execution error: "
                            f"{type(exc).__name__}: {exc}"}
        row["index"] = index
        if cache is not None:
            # The write-behind entry must be visible before the claim
            # settles, so a stolen duplicate dedupes on its cache key.
            cache.flush()
        send({"op": "result", "index": index, "row": row})


__all__ = ["NodeServer", "wire_source", "JOIN_HANDSHAKE_TIMEOUT_S"]
