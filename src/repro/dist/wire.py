"""Length-prefixed JSON framing — the codec of every dist connection.

One frame is a 4-byte big-endian length followed by that many bytes of
UTF-8 JSON.  The prefix makes message boundaries explicit (TCP is a
byte stream), keeps the parser trivial, and lets a receiver reject a
nonsense length before allocating for it.  All dist protocols
(coordinator<->node, node<->cache server) are frame sequences; a clean
EOF between frames is the normal way a peer says goodbye, so
:func:`recv_frame` returns ``None`` there instead of raising.

Chaos: senders route the encoded bytes through a caller-named fault
site (``shard.rpc`` for node RPC, ``cache.fetch`` for cache client
frames), so injected corruption/raises happen *on the wire path* and
containment is tested where the failure would really occur.  A frame
corrupted in flight surfaces as :class:`WireError` on the receiving
side (bad JSON / bad length), never as a crash.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, Optional

from repro.faults import FaultInjected, fault_point

#: Frames above this are protocol errors, not payloads (a corrupted
#: length prefix reads as gibberish; don't allocate gibibytes for it).
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LEN = struct.Struct(">I")


class WireError(Exception):
    """A malformed or oversized frame (protocol violation, not I/O)."""


def send_frame(sock: socket.socket, message: Dict[str, Any],
               site: Optional[str] = None) -> None:
    """Encode and send one frame.

    ``site`` names the fault site the encoded bytes route through
    (``None`` skips injection — used by replies on the trusted side).
    Raises ``OSError`` on a dead socket and :class:`FaultInjected` for
    injected raise-kind faults; callers own the containment policy.
    """
    data = json.dumps(message, separators=(",", ":")).encode()
    if site is not None:
        data = fault_point(site, data)
    if len(data) > MAX_FRAME_BYTES:
        raise WireError(f"frame of {len(data)} bytes exceeds "
                        f"{MAX_FRAME_BYTES}")
    sock.sendall(_LEN.pack(len(data)) + data)


def recv_exactly(sock: socket.socket, count: int) -> Optional[bytes]:
    """``count`` bytes, or ``None`` on a clean EOF *before* any byte.

    EOF mid-chunk is a torn frame — that is a :class:`WireError`, not a
    goodbye.
    """
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if remaining == count:
                return None
            raise WireError(f"connection closed {remaining} bytes into "
                            f"a {count}-byte read")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """One decoded frame, or ``None`` on clean EOF between frames.

    Raises :class:`WireError` for torn/oversized/undecodable frames and
    propagates ``OSError``/``socket.timeout`` from the socket itself.
    """
    header = recv_exactly(sock, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise WireError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    body = recv_exactly(sock, length)
    if body is None:
        raise WireError("connection closed between header and body")
    try:
        message = json.loads(body.decode())
    except (ValueError, UnicodeDecodeError) as exc:
        raise WireError(f"undecodable frame: {exc}") from exc
    if not isinstance(message, dict):
        raise WireError(f"frame is {type(message).__name__}, expected "
                        f"an object")
    return message


def connect(host: str, port: int,
            timeout: Optional[float] = None) -> socket.socket:
    """A connected TCP socket with ``TCP_NODELAY`` (frames are small
    and latency-sensitive; Nagle would batch them)."""
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock


__all__ = [
    "MAX_FRAME_BYTES",
    "WireError",
    "connect",
    "recv_exactly",
    "recv_frame",
    "send_frame",
    "FaultInjected",
]
