"""Length-prefixed JSON framing — the codec of every dist connection.

One frame is a 4-byte big-endian length followed by that many bytes of
UTF-8 JSON.  The prefix makes message boundaries explicit (TCP is a
byte stream), keeps the parser trivial, and lets a receiver reject a
nonsense length before allocating for it.  All dist protocols
(coordinator<->node, node<->cache server) are frame sequences; a clean
EOF between frames is the normal way a peer says goodbye, so
:func:`recv_frame` returns ``None`` there instead of raising.

Chaos: senders route the encoded bytes through a caller-named fault
site (``shard.rpc`` for node RPC, ``cache.fetch`` for cache client
frames), so injected corruption/raises happen *on the wire path* and
containment is tested where the failure would really occur.  A frame
corrupted in flight surfaces as :class:`WireError` on the receiving
side (bad JSON / bad length), never as a crash.
"""

from __future__ import annotations

import json
import random
import socket
import struct
import time
import zlib
from typing import Any, Callable, Dict, Optional

from repro.faults import FaultInjected, fault_point

#: Frames above this are protocol errors, not payloads (a corrupted
#: length prefix reads as gibberish; don't allocate gibibytes for it).
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LEN = struct.Struct(">I")


class WireError(Exception):
    """A malformed or oversized frame (protocol violation, not I/O)."""


def send_frame(sock: socket.socket, message: Dict[str, Any],
               site: Optional[str] = None) -> None:
    """Encode and send one frame.

    ``site`` names the fault site the encoded bytes route through
    (``None`` skips injection — used by replies on the trusted side).
    Raises ``OSError`` on a dead socket and :class:`FaultInjected` for
    injected raise-kind faults; callers own the containment policy.
    """
    data = json.dumps(message, separators=(",", ":")).encode()
    if site is not None:
        data = fault_point(site, data)
    if len(data) > MAX_FRAME_BYTES:
        raise WireError(f"frame of {len(data)} bytes exceeds "
                        f"{MAX_FRAME_BYTES}")
    sock.sendall(_LEN.pack(len(data)) + data)


def recv_exactly(sock: socket.socket, count: int) -> Optional[bytes]:
    """``count`` bytes, or ``None`` on a clean EOF *before* any byte.

    EOF mid-chunk is a torn frame — that is a :class:`WireError`, not a
    goodbye.
    """
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if remaining == count:
                return None
            raise WireError(f"connection closed {remaining} bytes into "
                            f"a {count}-byte read")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """One decoded frame, or ``None`` on clean EOF between frames.

    Raises :class:`WireError` for torn/oversized/undecodable frames and
    propagates ``OSError``/``socket.timeout`` from the socket itself.
    """
    header = recv_exactly(sock, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise WireError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    body = recv_exactly(sock, length)
    if body is None:
        raise WireError("connection closed between header and body")
    try:
        message = json.loads(body.decode())
    except (ValueError, UnicodeDecodeError) as exc:
        raise WireError(f"undecodable frame: {exc}") from exc
    if not isinstance(message, dict):
        raise WireError(f"frame is {type(message).__name__}, expected "
                        f"an object")
    return message


def connect(host: str, port: int,
            timeout: Optional[float] = None) -> socket.socket:
    """A connected TCP socket with ``TCP_NODELAY`` (frames are small
    and latency-sensitive; Nagle would batch them)."""
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock


def backoff_rng(seed: int, label: str) -> random.Random:
    """A deterministic per-peer jitter stream.

    Every retry loop in the dist tier (coordinator redial, node rejoin)
    draws its backoff jitter from a stream seeded by ``(seed, label)``
    via crc32 — the same idiom as :mod:`repro.faults` — so a given
    topology + seed reproduces the exact retry schedule, and two peers
    with the same seed still jitter differently.
    """
    return random.Random(zlib.crc32(f"{seed}:{label}".encode()))


def retry_backoff(attempt: int, base_s: float,
                  rng: random.Random) -> float:
    """Jittered linear backoff: ``base * attempt * uniform(0.5, 1.5)``
    — the scheduler's crash-retry curve, reused for RPC retries."""
    return base_s * max(1, attempt) * rng.uniform(0.5, 1.5)


def connect_with_retry(host: str, port: int, tries: int = 3,
                       backoff_s: float = 0.2,
                       timeout: Optional[float] = None,
                       rng: Optional[random.Random] = None,
                       on_retry: Optional[Callable[[int, Exception],
                                                   None]] = None
                       ) -> socket.socket:
    """Dial with bounded seeded-jitter retry before giving up.

    A transient refusal (node mid-session, accept backlog full, TCP
    blip) costs a short jittered sleep instead of a shard reassignment.
    ``on_retry(attempt, exc)`` fires before each re-attempt so callers
    can count retries.  The final failure's ``OSError`` propagates.
    """
    rng = rng or random.Random(0)
    tries = max(1, tries)
    for attempt in range(1, tries + 1):
        try:
            return connect(host, port, timeout=timeout)
        except OSError as exc:
            if attempt >= tries:
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            time.sleep(retry_backoff(attempt, backoff_s, rng))
    raise OSError(f"unreachable {host}:{port}")  # pragma: no cover


__all__ = [
    "MAX_FRAME_BYTES",
    "WireError",
    "backoff_rng",
    "connect",
    "connect_with_retry",
    "recv_exactly",
    "recv_frame",
    "retry_backoff",
    "send_frame",
    "FaultInjected",
]
