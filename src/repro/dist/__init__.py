"""Distributed batch tier: coordinator, worker nodes, remote cache.

The single-host runtime already has the primitives a distributed tier
needs — jobs are JSON-able dicts keyed by a content sha256
(:func:`repro.runtime.cache.cache_key`), the scheduler's failure ladder
is deterministic, and progress flows through one
:class:`~repro.runtime.pool.ProgressEvent` callback API.  This package
scales that runtime across machines without changing any of it:

* :mod:`repro.dist.wire` — length-prefixed JSON frames over TCP, the
  one codec every dist connection speaks;
* :mod:`repro.dist.cachenet` — a shared :class:`~repro.runtime.cache
  .ResultCache` served over the wire (:class:`~repro.dist.cachenet
  .CacheServer`) and its node-side read-through / write-behind client
  (:class:`~repro.dist.cachenet.RemoteCache`) — any node's hit is every
  node's hit;
* :mod:`repro.dist.node` — ``repro dist serve-node``: a worker node
  that executes shipped jobs through a local
  :class:`~repro.runtime.scheduler.BatchScheduler` (same ladder, same
  row shape) and streams events/results back;
* :mod:`repro.dist.coordinator` — shards a manifest across nodes by
  cache-key hash, refills windows as results land, steals from
  straggler shards for idle nodes, reassigns a dead node's jobs, and
  merges rows byte-identically to a single-host run.

Failure containment extends the local ladder one level up: a fault
*inside* a node degrades the job (local ladder), the *loss* of a node
is first answered with bounded seeded-jitter redial, then reassignment
(coordinator), and losing every node falls back to running the
remainder locally — the batch always completes.  Two robustness layers
sit on top: the coordinator journals ``start``/``done`` plus
``claim``/``reassign`` records through the PR 5 write-ahead journal
(``repro batch --nodes --journal``; a SIGKILL'd coordinator resumes
with ``--resume``), and membership is dynamic — late nodes register
mid-batch through the coordinator's join listener (``repro dist
serve-node --join``) and dropped nodes re-register in place.
"""

from repro.dist.cachenet import CacheServer, RemoteCache
from repro.dist.coordinator import DistCoordinator, parse_nodes
from repro.dist.node import NodeServer
from repro.dist.wire import (
    WireError,
    backoff_rng,
    connect_with_retry,
    recv_frame,
    retry_backoff,
    send_frame,
)

__all__ = [
    "CacheServer",
    "DistCoordinator",
    "NodeServer",
    "RemoteCache",
    "WireError",
    "backoff_rng",
    "connect_with_retry",
    "parse_nodes",
    "recv_frame",
    "retry_backoff",
    "send_frame",
]
