"""Baseline technology mappers for the Table 2 comparison.

The paper compares ``mulop-dcII`` against FGMap, mis-pga(new) and IMODEC
— closed or long-gone tools.  We substitute two honest, self-contained
baselines (documented in DESIGN.md):

* :func:`mux_tree_map` — a BDD-driven Shannon/MUX mapper: the function's
  BDD is walked top-down; sub-functions whose support fits one LUT become
  leaf LUTs, everything above is 2:1 MUX LUTs.  Node-level memoisation
  gives DAG sharing.  This approximates the early BDD-based LUT mappers.
* :func:`structural_cut_map` — a structural mapper in the mis-pga
  tradition: the function is first expanded into a two-input-gate network
  (one MUX per BDD node), then covered with k-feasible cuts by a greedy
  level-oriented pass.

Additionally the paper's published CLB counts for the three external
tools are shipped as reference constants in
:mod:`repro.bench.paper_tables` so the Table 2 harness can print the
original columns next to ours.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.bdd.manager import BDD
from repro.boolfunc.spec import MultiFunction
from repro.mapping.lutnet import CONST0, CONST1, LutNetwork


def mux_tree_map(func: MultiFunction, n_lut: int = 5) -> LutNetwork:
    """Shannon/MUX-tree mapping of each output's BDD.

    Don't cares are completed to 0 (baselines have no DC machinery).
    """
    bdd = func.bdd
    net = LutNetwork()
    signal_of: Dict[int, str] = {}
    for var, name in zip(func.inputs, func.input_names):
        net.add_input(name)
        signal_of[var] = name
    memo: Dict[int, str] = {}

    def map_node(f: int) -> str:
        if f == BDD.FALSE:
            return CONST0
        if f == BDD.TRUE:
            return CONST1
        cached = memo.get(f)
        if cached is not None:
            return cached
        support = sorted(bdd.support(f))
        if len(support) <= n_lut:
            table = bdd.to_truth_table(f, support)
            signal = net.add_lut([signal_of[v] for v in support], table)
        else:
            var = bdd.var_of(f)
            lo = map_node(bdd.low(f))
            hi = map_node(bdd.high(f))
            # Inputs (sel, hi, lo): sel ? hi : lo.
            signal = net.add_lut([signal_of[var], hi, lo],
                                 [0, 1, 0, 1, 0, 0, 1, 1],
                                 name_hint="mux")
        memo[f] = signal
        return signal

    for name, isf in zip(func.output_names, func.outputs):
        net.set_output(name, map_node(isf.lo))
    return net


# ----------------------------------------------------------------------
# Structural cut mapping
# ----------------------------------------------------------------------

_MUX_TABLE = [0, 1, 0, 1, 0, 0, 1, 1]  # (sel, hi, lo)


def _gate_network_from_bdds(func: MultiFunction) -> Tuple[
        List[Tuple[str, str, str, str]], Dict[str, str], List[str]]:
    """Expand each output BDD into MUX3 'gates'.

    Returns (gates, outputs, inputs): gates are
    ``(name, sel_signal, hi_signal, lo_signal)`` in topological order.
    """
    bdd = func.bdd
    gates: List[Tuple[str, str, str, str]] = []
    memo: Dict[int, str] = {}

    def walk(f: int) -> str:
        if f == BDD.FALSE:
            return CONST0
        if f == BDD.TRUE:
            return CONST1
        cached = memo.get(f)
        if cached is not None:
            return cached
        var = bdd.var_of(f)
        lo = walk(bdd.low(f))
        hi = walk(bdd.high(f))
        name = f"m{len(gates)}"
        sel = func.input_names[func.inputs.index(var)]
        gates.append((name, sel, hi, lo))
        memo[f] = name
        return name

    outputs = {name: walk(isf.lo)
               for name, isf in zip(func.output_names, func.outputs)}
    return gates, outputs, list(func.input_names)


def structural_cut_map(func: MultiFunction, n_lut: int = 5) -> LutNetwork:
    """Greedy k-feasible-cut covering of the BDD-MUX gate network."""
    gates, outputs, inputs = _gate_network_from_bdds(func)
    is_gate = {g[0] for g in gates}
    fanins: Dict[str, List[str]] = {
        name: [sel, hi, lo] for name, sel, hi, lo in gates}

    # Greedy cut computation in topological order: a gate's cut is the
    # union of its fanins' cuts if that stays k-feasible, otherwise the
    # fanin signals themselves.
    cut: Dict[str, Set[str]] = {}

    def leaf_cut(signal: str) -> Set[str]:
        if signal in is_gate:
            return cut[signal]
        return {signal} if signal not in (CONST0, CONST1) else set()

    for name, sel, hi, lo in gates:
        merged: Set[str] = set()
        for s in (sel, hi, lo):
            merged |= leaf_cut(s)
        if len(merged) <= n_lut:
            cut[name] = merged
        else:
            cut[name] = {s for s in (sel, hi, lo)
                         if s not in (CONST0, CONST1)}

    # Cover from the outputs.
    net = LutNetwork()
    for name in inputs:
        net.add_input(name)
    mapped: Dict[str, str] = {name: name for name in inputs}
    mapped[CONST0] = CONST0
    mapped[CONST1] = CONST1

    def simulate_words(signal: str, words: Dict[str, int], width: int,
                       memo: Dict[str, int]) -> int:
        """Bit-parallel cone simulation: one pattern per bit."""
        mask = (1 << width) - 1
        if signal in words:
            return words[signal]
        if signal == CONST0:
            return 0
        if signal == CONST1:
            return mask
        if signal in memo:
            return memo[signal]
        sel, hi, lo = fanins[signal]
        s = simulate_words(sel, words, width, memo)
        h = simulate_words(hi, words, width, memo)
        low = simulate_words(lo, words, width, memo)
        value = (s & h) | (~s & low & mask)
        memo[signal] = value
        return value

    def map_root(signal: str) -> str:
        if signal in mapped:
            return mapped[signal]
        leaves = sorted(cut[signal])
        leaf_signals = [map_root(s) for s in leaves]
        k = len(leaves)
        width = 1 << k
        # Leaf j's word enumerates its value across all 2^k patterns.
        words = {}
        for j, leaf in enumerate(leaves):
            word = 0
            for idx in range(width):
                if (idx >> (k - 1 - j)) & 1:
                    word |= 1 << idx
            words[leaf] = word
        out = simulate_words(signal, words, width, {})
        table = [(out >> idx) & 1 for idx in range(width)]
        result = net.add_lut(leaf_signals, table)
        mapped[signal] = result
        return result

    for out, signal in outputs.items():
        net.set_output(out, map_root(signal))
    return net
