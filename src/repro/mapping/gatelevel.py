"""Two-input-gate realisation of decomposed networks.

The paper's arithmetic experiments (Figures 2 and 3, the multiplier
scaling claim) report *two-input gate* counts.  We reproduce that cost
model by decomposing down to 3-input blocks (``n_lut = 3``) and realising
every block with a minimal two-input-gate tree:

* a dynamic program over the 256 three-variable functions computes, once
  per process, the minimum tree size in {AND, OR, XOR} gates with free
  input/output negation (inverters are tracked separately — the classic
  academic counting convention, applied identically to our circuits and
  to the baselines, so comparisons are fair);
* gate networks are structurally hashed, so identical subfunctions are
  shared across blocks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.boolfunc.spec import MultiFunction
from repro.mapping.lutnet import CONST0, CONST1, LutNetwork

_MASK = 0xFF
_PROJ = (0xF0, 0xCC, 0xAA)  # x0 (MSB), x1, x2 over 3-var minterms
_OPS = ("and", "or", "xor")


def _apply(op: str, a: int, b: int) -> int:
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    return (a ^ b) & _MASK


class _Plan:
    """Best realisation of one negation-class of 3-var functions."""

    __slots__ = ("cost", "depth", "fn", "op", "arg_a", "arg_b")

    def __init__(self, cost: int, depth: int, fn: int,
                 op: Optional[str] = None,
                 arg_a: Optional[Tuple[int, int]] = None,
                 arg_b: Optional[Tuple[int, int]] = None):
        self.cost = cost          # binary gates
        self.depth = depth        # binary gate levels
        self.fn = fn              # the function the plan's signal computes
        self.op = op              # None for leaves
        self.arg_a = arg_a        # (function int, _) of the left operand
        self.arg_b = arg_b


_DP: Optional[Dict[int, _Plan]] = None


def _cls(f: int) -> int:
    return min(f, (~f) & _MASK)


def _support_mask(f: int) -> int:
    """Bitmask of the variables an 8-bit function depends on."""
    mask = 0
    if (f >> 4) & 0x0F != f & 0x0F:
        mask |= 4  # x0
    if (f >> 2) & 0x33 != f & 0x33:
        mask |= 2  # x1
    if (f >> 1) & 0x55 != f & 0x55:
        mask |= 1  # x2
    return mask


def _build_dp() -> Dict[int, _Plan]:
    best: Dict[int, _Plan] = {}
    # Leaves: constants and projections (zero gates).
    best[_cls(0x00)] = _Plan(0, 0, 0x00)
    for proj in _PROJ:
        best[_cls(proj)] = _Plan(0, 0, proj)
    changed = True
    while changed:
        changed = False
        reps = list(best.items())
        for ca, plan_a in reps:
            for cb, plan_b in reps:
                for fa in (plan_a.fn, (~plan_a.fn) & _MASK):
                    for fb in (plan_b.fn, (~plan_b.fn) & _MASK):
                        for op in _OPS:
                            f = _apply(op, fa, fb)
                            # Reject plans whose operands use variables
                            # outside the result's support — guarantees a
                            # k-input node never references a missing
                            # fanin, and never costs optimality (a
                            # cancellation-free minimal tree always
                            # exists).
                            if (_support_mask(fa) | _support_mask(fb)) \
                                    & ~_support_mask(f):
                                continue
                            c = _cls(f)
                            cost = plan_a.cost + plan_b.cost + 1
                            depth = max(plan_a.depth, plan_b.depth) + 1
                            old = best.get(c)
                            if (old is None
                                    or (cost, depth) < (old.cost,
                                                        old.depth)):
                                best[c] = _Plan(cost, depth, f, op,
                                                (fa, 0), (fb, 0))
                                changed = True
    if len(best) != 128:
        raise AssertionError("3-var DP did not cover all classes")
    return best


def _dp() -> Dict[int, _Plan]:
    global _DP
    if _DP is None:
        _DP = _build_dp()
    return _DP


def optimal_gate_cost(table: Sequence[int]) -> int:
    """Minimal two-input-gate tree size for a function of <= 3 variables.

    ``table`` is the usual MSB-first truth table of length 2, 4 or 8.
    """
    f = _embed(table)
    return _dp()[_cls(f)].cost


def _embed(table: Sequence[int]) -> int:
    """Embed a k<=3 variable table into the 3-variable function space."""
    k = {2: 1, 4: 2, 8: 3}.get(len(table))
    if k is None:
        raise ValueError("table must have 2, 4 or 8 entries")
    f = 0
    for i in range(8):
        if table[i >> (3 - k)]:
            f |= 1 << i
    return f


def _normalise_const(sig: Tuple[str, bool]) -> Tuple[str, bool]:
    if sig == (CONST0, True):
        return (CONST1, False)
    if sig == (CONST1, True):
        return (CONST0, False)
    return sig


def _fold(op: str, a: Tuple[str, bool],
          b: Tuple[str, bool]) -> Optional[Tuple[str, bool]]:
    """Constant and duplicate-operand simplification; None if a real gate
    is needed."""
    const0, const1 = (CONST0, False), (CONST1, False)
    for x, y in ((a, b), (b, a)):
        if x == const0:
            return {"and": const0, "or": y, "xor": y}[op]
        if x == const1:
            return {"and": y, "or": const1,
                    "xor": (y[0], not y[1])}[op]
    if a == b:
        return {"and": a, "or": a, "xor": const0}[op]
    if a[0] == b[0] and a[1] != b[1]:
        return {"and": const0, "or": const1, "xor": const1}[op]
    return None


class Gate:
    """A gate: op in {and, or, xor, not}; fanins are (signal, negated)."""

    __slots__ = ("name", "op", "fanins")

    def __init__(self, name: str, op: str,
                 fanins: List[Tuple[str, bool]]):
        self.name = name
        self.op = op
        self.fanins = fanins


class GateNetwork:
    """A DAG of two-input gates (plus explicit output inverters)."""

    def __init__(self) -> None:
        self.inputs: List[str] = []
        self.gates: Dict[str, Gate] = {}
        self.outputs: Dict[str, Tuple[str, bool]] = {}
        self._order: List[str] = []
        self._hash: Dict[Tuple, str] = {}
        self._counter = 0

    def add_input(self, name: str) -> str:
        """Declare a primary input signal."""
        self.inputs.append(name)
        return name

    def add_gate(self, op: str, a: Tuple[str, bool],
                 b: Tuple[str, bool]) -> Tuple[str, bool]:
        """Add a binary gate; returns its (signal, maybe-negated).

        Structurally hashed, commutativity-normalised, and constant/
        duplicate operands are folded away (no gate is created).
        """
        if op not in _OPS:
            raise ValueError(f"unknown op {op!r}")
        # Normalise constants to positive polarity.
        a = _normalise_const(a)
        b = _normalise_const(b)
        folded = _fold(op, a, b)
        if folded is not None:
            return folded
        # XOR input negations float to the output.
        neg_out = False
        if op == "xor":
            neg_out = a[1] ^ b[1]
            a, b = (a[0], False), (b[0], False)
        key = (op,) + tuple(sorted([a, b]))
        existing = self._hash.get(key)
        if existing is None:
            self._counter += 1
            name = f"g{self._counter}"
            self.gates[name] = Gate(name, op, list(sorted([a, b])))
            self._order.append(name)
            self._hash[key] = name
            existing = name
        return existing, neg_out

    def set_output(self, name: str, signal: Tuple[str, bool]) -> None:
        """Bind a primary output to a (signal, negated) pair."""
        self.outputs[name] = signal

    def live_gates(self) -> Set[str]:
        """Gates reachable from the primary outputs."""
        live: Set[str] = set()
        stack = [s for s, _ in self.outputs.values() if s in self.gates]
        while stack:
            name = stack.pop()
            if name in live:
                continue
            live.add(name)
            for s, _ in self.gates[name].fanins:
                if s in self.gates:
                    stack.append(s)
        return live

    @property
    def gate_count(self) -> int:
        """Live binary gates (inverters are free in this cost model;
        gates not reachable from any output are dead and not counted)."""
        return len(self.live_gates())

    @property
    def total_gate_count(self) -> int:
        """All created binary gates, dead ones included."""
        return len(self.gates)

    @property
    def inverter_count(self) -> int:
        """Negations that must be realised (negated gate fanins/outputs
        of non-XOR consumers plus negated primary outputs)."""
        negated = set()
        for gate in self.gates.values():
            for signal, neg in gate.fanins:
                if neg:
                    negated.add(signal)
        for signal, neg in self.outputs.values():
            if neg:
                negated.add(signal)
        return len(negated)

    def depth(self) -> int:
        """Binary-gate levels on the longest path."""
        level: Dict[str, int] = {name: 0 for name in self.inputs}
        level[CONST0] = 0
        level[CONST1] = 0
        for name in self._order:
            gate = self.gates[name]
            level[name] = 1 + max(level[s] for s, _ in gate.fanins)
        return max((level[s] for s, _ in self.outputs.values()), default=0)

    def evaluate(self, assignment: Dict[str, int]) -> Dict[str, int]:
        """Simulate the network; returns every gate signal's value."""
        values: Dict[str, int] = {CONST0: 0, CONST1: 1}
        values.update({k: int(v) for k, v in assignment.items()})
        for name in self._order:
            gate = self.gates[name]
            (sa, na), (sb, nb) = gate.fanins
            va = values[sa] ^ (1 if na else 0)
            vb = values[sb] ^ (1 if nb else 0)
            values[name] = _apply_bit(gate.op, va, vb)
        return values

    def eval_outputs(self, assignment: Dict[str, int]) -> Dict[str, int]:
        """Primary-output values (output polarities applied)."""
        values = self.evaluate(assignment)
        return {out: values[sig] ^ (1 if neg else 0)
                for out, (sig, neg) in self.outputs.items()}


def _apply_bit(op: str, a: int, b: int) -> int:
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    return a ^ b


def to_gates(net: LutNetwork) -> GateNetwork:
    """Convert a LUT network with max fanin 3 into two-input gates."""
    if net.max_fanin() > 3:
        raise ValueError("decompose with n_lut<=3 before gate conversion")
    dp = _dp()
    gnet = GateNetwork()
    for name in net.inputs:
        gnet.add_input(name)
    # signal name in the LUT net -> (gate signal, negated)
    signal: Dict[str, Tuple[str, bool]] = {
        name: (name, False) for name in net.inputs}
    signal[CONST0] = (CONST0, False)
    signal[CONST1] = (CONST1, False)

    for node in net.node_list():
        fanins = [signal[s] for s in node.fanins]
        f = _embed(node.table)

        memo: Dict[int, Tuple[str, bool]] = {}

        def emit(fn: int) -> Tuple[str, bool]:
            """Signal computing the 3-var function `fn` over this node's
            fanins."""
            if fn in memo:
                return memo[fn]
            if fn == 0x00:
                result = (CONST0, False)
            elif fn == _MASK:
                result = (CONST1, False)
            else:
                for i, proj in enumerate(_PROJ):
                    if fn == proj and i < len(fanins):
                        result = fanins[i]
                        break
                    if fn == ((~proj) & _MASK) and i < len(fanins):
                        s, neg = fanins[i]
                        result = (s, not neg)
                        break
                else:
                    plan = dp[_cls(fn)]
                    sig_a = emit(plan.arg_a[0])
                    sig_b = emit(plan.arg_b[0])
                    sig, neg = gnet.add_gate(plan.op, sig_a, sig_b)
                    if plan.fn != fn:
                        neg = not neg
                    result = (sig, neg)
            memo[fn] = result
            return result

        signal[node.name] = emit(f)

    for out, sig in net.outputs.items():
        gnet.set_output(out, signal[sig])
    return gnet


def gate_synthesize(func: MultiFunction, use_dontcares: bool = True,
                    **engine_kwargs) -> GateNetwork:
    """Decompose to 3-input blocks, then realise with two-input gates.

    Balanced (communication-minimising) bound sets are used by default —
    this is the mode behind the paper's two-input-gate results.  The
    driving engine's :class:`DecompositionStats` (phase timings, BDD
    counters) are attached to the result as ``decomposition_stats``.
    """
    from repro.decomp.recursive import DecompositionEngine
    engine_kwargs.setdefault("balanced", True)
    engine = DecompositionEngine(n_lut=3, use_dontcares=use_dontcares,
                                 **engine_kwargs)
    lut_net = engine.run(func)
    gnet = to_gates(lut_net)
    gnet.decomposition_stats = engine.stats
    return gnet
