"""A lookup-table network — the output of the decomposition flow.

Signals are strings.  The constants ``"const0"``/``"const1"`` are always
available.  Nodes are LUTs: a fanin list plus a truth table in the usual
MSB-first convention (``fanins[0]`` is the most significant index bit).

Structural hashing is built in: :meth:`LutNetwork.add_lut` returns an
existing signal when an identical (fanins, table) node already exists,
and degenerate tables (constants, buffers, single-variable functions
whose value ignores some fanins) are simplified before a node is
created.  That mirrors what any real synthesis backend does and keeps
LUT counts honest.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

CONST0 = "const0"
CONST1 = "const1"


class LutNode:
    """One LUT: output signal name, fanin signals, truth table."""

    __slots__ = ("name", "fanins", "table")

    def __init__(self, name: str, fanins: List[str], table: List[int]):
        self.name = name
        self.fanins = fanins
        self.table = table

    @property
    def fanin_count(self) -> int:
        """Number of fanin signals."""
        return len(self.fanins)

    def __repr__(self) -> str:
        return f"<LutNode {self.name}({', '.join(self.fanins)})>"


def _table_support(table: Sequence[int], k: int) -> List[int]:
    """Indices of fanins the table actually depends on."""
    support = []
    for i in range(k):
        stride = 1 << (k - 1 - i)
        for base in range(1 << k):
            if base & stride:
                continue
            if table[base] != table[base | stride]:
                support.append(i)
                break
    return support


def _project_table(table: Sequence[int], k: int,
                   keep: Sequence[int]) -> List[int]:
    """Truth table restricted to the kept fanin indices."""
    m = len(keep)
    out = []
    for idx in range(1 << m):
        full = 0
        for j, i in enumerate(keep):
            if (idx >> (m - 1 - j)) & 1:
                full |= 1 << (k - 1 - i)
        out.append(table[full])
    return out


class LutNetwork:
    """A DAG of LUTs with named primary inputs and outputs."""

    def __init__(self) -> None:
        self.inputs: List[str] = []
        self.nodes: Dict[str, LutNode] = {}
        self.outputs: Dict[str, str] = {}  # output name -> signal
        self._node_order: List[str] = []   # topological (creation) order
        self._hash: Dict[Tuple[Tuple[str, ...], Tuple[int, ...]], str] = {}
        self._counter = 0

    # -- construction ----------------------------------------------------

    def add_input(self, name: str) -> str:
        """Declare a primary input signal."""
        if name in self.inputs or name in self.nodes:
            raise ValueError(f"signal {name!r} already exists")
        self.inputs.append(name)
        return name

    def _fresh_name(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}_{self._counter}"

    def add_lut(self, fanins: Sequence[str], table: Sequence[int],
                name_hint: str = "n") -> str:
        """Add a LUT, with simplification and structural hashing.

        Returns the signal realising the function — possibly a constant,
        an existing fanin (buffer), or a previously created node.
        """
        fanins = list(fanins)
        table = [1 if t else 0 for t in table]
        if len(table) != (1 << len(fanins)):
            raise ValueError("table length must be 2**len(fanins)")
        for s in fanins:
            self._check_signal(s)
        # Fold constant fanins into the table.
        if CONST0 in fanins or CONST1 in fanins:
            k = len(fanins)
            keep = [i for i, s in enumerate(fanins)
                    if s not in (CONST0, CONST1)]
            fixed = {i: (1 if fanins[i] == CONST1 else 0)
                     for i in range(k) if fanins[i] in (CONST0, CONST1)}
            new_table = []
            m = len(keep)
            for idx in range(1 << m):
                full = 0
                for j, i in enumerate(keep):
                    if (idx >> (m - 1 - j)) & 1:
                        full |= 1 << (k - 1 - i)
                for i, val in fixed.items():
                    if val:
                        full |= 1 << (k - 1 - i)
                new_table.append(table[full])
            fanins = [fanins[i] for i in keep]
            table = new_table
        # Merge duplicate fanins.
        if len(set(fanins)) != len(fanins):
            uniq: List[str] = []
            for s in fanins:
                if s not in uniq:
                    uniq.append(s)
            k = len(fanins)
            m = len(uniq)
            new_table = []
            for idx in range(1 << m):
                full = 0
                for i in range(k):
                    j = uniq.index(fanins[i])
                    if (idx >> (m - 1 - j)) & 1:
                        full |= 1 << (k - 1 - i)
                new_table.append(table[full])
            fanins = uniq
            table = new_table
        # Remove fanins the table ignores.
        support = _table_support(table, len(fanins))
        if len(support) != len(fanins):
            table = _project_table(table, len(fanins), support)
            fanins = [fanins[i] for i in support]
        # Degenerate cases.
        if not fanins:
            return CONST1 if table[0] else CONST0
        if len(fanins) == 1 and table == [0, 1]:
            return fanins[0]  # buffer
        key = (tuple(fanins), tuple(table))
        existing = self._hash.get(key)
        if existing is not None:
            return existing
        name = self._fresh_name(name_hint)
        node = LutNode(name, list(fanins), list(table))
        self.nodes[name] = node
        self._node_order.append(name)
        self._hash[key] = name
        return name

    def set_output(self, name: str, signal: str) -> None:
        """Bind a primary output name to a signal."""
        self._check_signal(signal)
        self.outputs[name] = signal

    def sweep(self) -> int:
        """Drop LUT nodes unreachable from any bound output.

        Returns the number removed.  The engine's per-output quarantine
        uses this to shed the partial nodes of an aborted decomposition
        attempt — they are structurally sound but dead, and would
        otherwise inflate the LUT/CLB counts.
        """
        live: set = set()
        stack = list(self.outputs.values())
        while stack:
            signal = stack.pop()
            if signal in live:
                continue
            live.add(signal)
            node = self.nodes.get(signal)
            if node is not None:
                stack.extend(node.fanins)
        dead = [name for name in self._node_order if name not in live]
        for name in dead:
            node = self.nodes.pop(name)
            key = (tuple(node.fanins), tuple(node.table))
            if self._hash.get(key) == name:
                del self._hash[key]
        if dead:
            self._node_order = [name for name in self._node_order
                                if name in live]
        return len(dead)

    def _check_signal(self, signal: str) -> None:
        if signal in (CONST0, CONST1):
            return
        if signal not in self.nodes and signal not in self.inputs:
            raise ValueError(f"unknown signal {signal!r}")

    # -- analysis ----------------------------------------------------------

    @property
    def lut_count(self) -> int:
        """Number of LUT nodes (inverters included, constants/buffers
        never become nodes)."""
        return len(self.nodes)

    def max_fanin(self) -> int:
        """Largest LUT fanin in the network (0 if empty)."""
        return max((n.fanin_count for n in self.nodes.values()), default=0)

    def node_list(self) -> List[LutNode]:
        """Nodes in topological order."""
        return [self.nodes[name] for name in self._node_order]

    def evaluate(self, assignment: Dict[str, int]) -> Dict[str, int]:
        """Evaluate the network; returns values for all signals."""
        values: Dict[str, int] = {CONST0: 0, CONST1: 1}
        for name in self.inputs:
            values[name] = int(assignment[name])
        for name in self._node_order:
            node = self.nodes[name]
            idx = 0
            for s in node.fanins:
                idx = (idx << 1) | values[s]
            values[name] = node.table[idx]
        return values

    def eval_outputs(self, assignment: Dict[str, int]) -> Dict[str, int]:
        """Primary output values under the assignment."""
        values = self.evaluate(assignment)
        return {out: values[sig] for out, sig in self.outputs.items()}

    def depth(self) -> int:
        """LUT levels on the longest input-to-output path."""
        level: Dict[str, int] = {CONST0: 0, CONST1: 0}
        for name in self.inputs:
            level[name] = 0
        for name in self._node_order:
            node = self.nodes[name]
            level[name] = 1 + max((level[s] for s in node.fanins), default=0)
        return max((level[s] for s in self.outputs.values()), default=0)

    def histogram(self) -> Dict[int, int]:
        """LUT count per fanin size."""
        hist: Dict[int, int] = {}
        for node in self.nodes.values():
            hist[node.fanin_count] = hist.get(node.fanin_count, 0) + 1
        return hist

    # -- export ----------------------------------------------------------

    def to_blif(self, model: str = "mapped") -> str:
        """BLIF text of the mapped network (one .names per LUT)."""
        lines = [f".model {model}",
                 ".inputs " + " ".join(self.inputs),
                 ".outputs " + " ".join(self.outputs)]
        for name in self._node_order:
            node = self.nodes[name]
            lines.append(".names " + " ".join(node.fanins) + f" {name}")
            k = node.fanin_count
            for idx, value in enumerate(node.table):
                if value:
                    bits = format(idx, f"0{k}b") if k else ""
                    lines.append((bits + " 1") if k else "1")
        for out, sig in self.outputs.items():
            if sig == out:
                continue
            if sig == CONST0:
                lines.append(f".names {out}")
            elif sig == CONST1:
                lines.append(f".names {out}\n1")
            else:
                lines.append(f".names {sig} {out}")
                lines.append("1 1")
        lines.append(".end")
        return "\n".join(lines) + "\n"

    def to_dot(self) -> str:
        """Graphviz rendering of the LUT DAG (inputs as boxes, LUTs as
        ellipses, outputs as plain labels)."""
        lines = ["digraph LutNetwork {", "  rankdir=LR;"]
        for name in self.inputs:
            lines.append(f'  "{name}" [shape=box];')
        for node in self.node_list():
            lines.append(
                f'  "{node.name}" [shape=ellipse, '
                f'label="{node.name}\\n{node.fanin_count}-LUT"];')
            for s in node.fanins:
                lines.append(f'  "{s}" -> "{node.name}";')
        for out, sig in self.outputs.items():
            lines.append(f'  "out_{out}" [shape=plaintext, label="{out}"];')
            lines.append(f'  "{sig}" -> "out_{out}";')
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"<LutNetwork {len(self.inputs)} in / {len(self.outputs)} "
                f"out, {self.lut_count} LUTs, depth {self.depth()}>")
