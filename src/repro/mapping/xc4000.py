"""XC4000 CLB packing — an architecture extension beyond the paper.

A Xilinx XC4000 CLB holds two 4-input function generators (F and G) and
a third 3-input generator (H) that combines F, G and one extra input.
One CLB can therefore absorb:

* an H-tree: a <=3-input node whose LUT fanins are two single-fanout
  <=4-input LUTs (three network nodes in one CLB);
* a pair of <=4-input LUTs (like the XC3000 FG mode, without the
  5-distinct-input restriction — F and G have separate pins); or
* a single LUT.

``pack_xc4000`` works on a 4-feasible LUT network (run the engine with
``n_lut=4``) and greedily extracts H-trees first, then pairs the
leftovers by maximum-cardinality matching.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.mapping.lutnet import LutNetwork


def _fanout_counts(net: LutNetwork) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for node in net.node_list():
        for s in node.fanins:
            counts[s] = counts.get(s, 0) + 1
    for sig in net.outputs.values():
        counts[sig] = counts.get(sig, 0) + 1
    return counts


def pack_xc4000(net: LutNetwork) -> List[Tuple[str, ...]]:
    """Pack a 4-feasible LUT network into XC4000 CLBs.

    Returns the CLB list (tuples of 1-3 LUT names).
    """
    nodes = net.node_list()
    for node in nodes:
        if node.fanin_count > 4:
            raise ValueError(
                f"node {node.name} has {node.fanin_count} inputs; "
                "decompose with n_lut=4 first")
    by_name = {node.name: node for node in nodes}
    fanout = _fanout_counts(net)

    used: Set[str] = set()
    clbs: List[Tuple[str, ...]] = []

    # Phase 1: H-trees.  h has <=3 fanins, at least two of which are
    # single-fanout LUT nodes (they become F and G).
    for node in nodes:
        if node.name in used or node.fanin_count > 3:
            continue
        lut_fanins = [s for s in node.fanins
                      if s in by_name and s not in used
                      and fanout.get(s, 0) == 1]
        if len(lut_fanins) >= 2:
            f, g = lut_fanins[0], lut_fanins[1]
            clbs.append((f, g, node.name))
            used.update((f, g, node.name))

    # Phase 2: pair the remaining LUTs.  Any two <=4-input LUTs share a
    # CLB on the XC4000 (F and G have independent pins), so pairing is
    # trivial — no matching needed.
    rest = [node.name for node in nodes if node.name not in used]
    for i in range(0, len(rest) - 1, 2):
        clbs.append((rest[i], rest[i + 1]))
    if len(rest) % 2:
        clbs.append((rest[-1],))
    return clbs


def clb_count_xc4000(net: LutNetwork) -> int:
    """Number of XC4000 CLBs after packing."""
    return len(pack_xc4000(net))
