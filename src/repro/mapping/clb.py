"""XC3000 CLB packing.

A Xilinx XC3000 CLB realises either one function of up to five inputs or
two functions of up to four inputs each whose combined support has at
most five distinct signals.  Following the paper (which adopts the
formulation of Murgai et al., DAC'90), merging LUT pairs into CLBs is a
maximum-cardinality matching problem on the *mergeability graph*: LUT
nodes are vertices; an edge joins two LUTs that fit one CLB together.

``CLB count = #LUTs - #matched pairs``.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

import networkx as nx

from repro.mapping.lutnet import LutNetwork


def mergeable(support_a: Set[str], support_b: Set[str],
              max_single: int = 4, max_union: int = 5) -> bool:
    """Can two LUTs with these supports share one XC3000 CLB?"""
    return (len(support_a) <= max_single
            and len(support_b) <= max_single
            and len(support_a | support_b) <= max_union)


def merge_luts_xc3000(net: LutNetwork) -> List[Tuple[str, ...]]:
    """Pack the network's LUTs into XC3000 CLBs.

    Returns the CLB list: each entry is a 1- or 2-tuple of LUT node
    names.  LUTs with more than five inputs are rejected (the network
    must already be 5-feasible).
    """
    nodes = net.node_list()
    for node in nodes:
        if node.fanin_count > 5:
            raise ValueError(
                f"node {node.name} has {node.fanin_count} inputs; "
                "decompose to n_lut=5 first")
    supports: Dict[str, Set[str]] = {
        node.name: set(node.fanins) for node in nodes}
    graph = nx.Graph()
    graph.add_nodes_from(supports)
    names = [node.name for node in nodes]
    for i in range(len(names)):
        for j in range(i + 1, len(names)):
            if mergeable(supports[names[i]], supports[names[j]]):
                graph.add_edge(names[i], names[j])
    matching = nx.max_weight_matching(graph, maxcardinality=True)
    matched: Set[str] = set()
    clbs: List[Tuple[str, ...]] = []
    for a, b in matching:
        clbs.append((a, b))
        matched.add(a)
        matched.add(b)
    for name in names:
        if name not in matched:
            clbs.append((name,))
    return clbs


def merge_luts_greedy(net: LutNetwork) -> List[Tuple[str, ...]]:
    """First-fit greedy pairing (baseline for the matching formulation).

    Walks the LUTs in topological order and pairs each unmatched LUT
    with the first later mergeable one.  Never better than the
    maximum-cardinality matching; the gap is what the paper's choice of
    the matching formulation (after Murgai et al.) buys.
    """
    nodes = net.node_list()
    for node in nodes:
        if node.fanin_count > 5:
            raise ValueError(
                f"node {node.name} has {node.fanin_count} inputs; "
                "decompose to n_lut=5 first")
    supports: Dict[str, Set[str]] = {
        node.name: set(node.fanins) for node in nodes}
    names = [node.name for node in nodes]
    used: Set[str] = set()
    clbs: List[Tuple[str, ...]] = []
    for i, a in enumerate(names):
        if a in used:
            continue
        partner = None
        for b in names[i + 1:]:
            if b not in used and mergeable(supports[a], supports[b]):
                partner = b
                break
        if partner is None:
            clbs.append((a,))
            used.add(a)
        else:
            clbs.append((a, partner))
            used.add(a)
            used.add(partner)
    return clbs


def merge_luts_indexed(net: LutNetwork) -> List[Tuple[str, ...]]:
    """Scalable near-greedy merge for very large LUT networks.

    The exact matching is cubic in the LUT count; above a few hundred
    LUTs we fall back to this indexed greedy: LUTs with <= 2 inputs pair
    freely (their union never exceeds 4), a leftover small LUT pairs
    with any 3-input LUT (union <= 5), and 3-/4-input LUTs search for a
    partner only among LUTs sharing a fanin (a necessary condition once
    both have >= 3 inputs).
    """
    nodes = net.node_list()
    supports: Dict[str, Set[str]] = {}
    small: List[str] = []
    big: List[str] = []
    for node in nodes:
        if node.fanin_count > 5:
            raise ValueError(
                f"node {node.name} has {node.fanin_count} inputs; "
                "decompose to n_lut=5 first")
        supports[node.name] = set(node.fanins)
        (small if node.fanin_count <= 2 else big).append(node.name)

    clbs: List[Tuple[str, ...]] = []
    # Pair the small LUTs among themselves.
    while len(small) >= 2:
        clbs.append((small.pop(), small.pop()))
    used: Set[str] = set()
    # Index bigger LUTs by fanin for shared-signal partner search.
    by_fanin: Dict[str, List[str]] = {}
    for name in big:
        if len(supports[name]) == 5:
            continue  # 5-input LUTs always occupy a CLB alone
        for s in supports[name]:
            by_fanin.setdefault(s, []).append(name)
    leftovers = list(small)  # at most one entry
    for name in big:
        if name in used:
            continue
        sup = supports[name]
        if len(sup) == 5:
            clbs.append((name,))
            used.add(name)
            continue
        partner = None
        probes = 0
        for s in sup:
            for cand in by_fanin.get(s, ()):
                if cand == name or cand in used:
                    continue
                probes += 1
                if mergeable(sup, supports[cand]):
                    partner = cand
                    break
                if probes >= 60:
                    break  # bounded search: keeps huge nets linear
            if partner is not None or probes >= 60:
                break
        if partner is None and leftovers and len(sup) <= 3:
            partner = leftovers.pop()
        used.add(name)
        if partner is None:
            clbs.append((name,))
        else:
            used.add(partner)
            clbs.append((name, partner))
    clbs.extend((name,) for name in leftovers if name not in used)
    return clbs


#: Above this LUT count the exact matching is replaced by the indexed
#: greedy merge (the matching is cubic).
EXACT_MATCHING_LIMIT = 700


def clb_count(net: LutNetwork) -> int:
    """Number of XC3000 CLBs after LUT merging (exact maximum matching
    up to :data:`EXACT_MATCHING_LIMIT` LUTs, indexed greedy beyond)."""
    if net.lut_count > EXACT_MATCHING_LIMIT:
        return len(merge_luts_indexed(net))
    return len(merge_luts_xc3000(net))
