"""FPGA mapping: LUT networks, XC3000 CLB merging, gate-level synthesis
and baseline mappers."""

from repro.mapping.lutnet import LutNetwork
from repro.mapping.clb import clb_count, merge_luts_xc3000
from repro.mapping.gatelevel import GateNetwork, to_gates
from repro.mapping.baselines import mux_tree_map, structural_cut_map
from repro.mapping.flowmap import flowmap
from repro.mapping.xc4000 import clb_count_xc4000, pack_xc4000

__all__ = [
    "LutNetwork",
    "clb_count",
    "merge_luts_xc3000",
    "GateNetwork",
    "to_gates",
    "mux_tree_map",
    "structural_cut_map",
    "flowmap",
    "clb_count_xc4000",
    "pack_xc4000",
]
