"""FlowMap: depth-optimal LUT technology mapping (Cong/Ding 1994).

The strongest classical structural baseline: for each node of a
K-bounded gate network the minimum possible LUT *depth label* is
computed exactly via a max-flow/min-cut argument, and the mapping phase
covers the network with the labelled cuts.  Depth optimality holds for
the given subject graph (here: the BDD-MUX expansion, like the other
structural baseline).

This complements the paper's Table 2 comparison with a baseline that is
provably depth-optimal, where the mux-tree and greedy-cut mappers are
purely heuristic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.boolfunc.spec import MultiFunction
from repro.mapping.baselines import _gate_network_from_bdds
from repro.mapping.lutnet import CONST0, CONST1, LutNetwork


def _cone(node: str, fanins: Dict[str, List[str]]) -> Set[str]:
    """All gate nodes in the transitive fanin of ``node`` (inclusive)."""
    seen: Set[str] = set()
    stack = [node]
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        for s in fanins.get(current, ()):
            if s in fanins:
                stack.append(s)
    return seen


def _min_height_cut(node: str, fanins: Dict[str, List[str]],
                    label: Dict[str, int], k: int
                    ) -> Optional[Set[str]]:
    """A K-feasible cut of ``node``'s cone whose leaves all have label
    ``< p`` (``p`` = max fanin label), or None if none exists.

    Implemented as a unit-node-capacity max-flow on the cone with the
    label-``p`` nodes collapsed into the sink (the FlowMap lemma).
    """
    cone = _cone(node, fanins)
    p = max((label[s] for s in fanins[node]), default=0)
    collapsed = {v for v in cone
                 if v == node or label.get(v, 0) == p}
    graph = nx.DiGraph()
    source, sink = "__S", "__T"
    leaves: Set[str] = set()
    for v in cone:
        for s in fanins[v]:
            if s in cone:
                continue
            leaves.add(s)  # primary input or constant entering the cone
    for leaf in leaves:
        graph.add_edge(source, f"in_{leaf}", capacity=float("inf"))
        graph.add_edge(f"in_{leaf}", f"out_{leaf}", capacity=1)
    for v in cone:
        if v in collapsed:
            continue
        graph.add_edge(f"in_{v}", f"out_{v}", capacity=1)
    for v in cone:
        target = sink if v in collapsed else f"in_{v}"
        for s in fanins[v]:
            if s in cone and s in collapsed:
                continue  # edges inside the collapsed region
            origin = f"out_{s}"
            if s not in cone and s not in leaves:
                continue
            graph.add_edge(origin, target, capacity=float("inf"))
    if sink not in graph:
        return None
    flow_value, flow = nx.maximum_flow(graph, source, sink)
    if flow_value > k:
        return None
    # Extract the cut: saturated split edges reachable from the source
    # in the residual graph on the source side.
    residual: Set[str] = set()
    stack = [source]
    visited = {source}
    while stack:
        u = stack.pop()
        for v, attrs in graph[u].items():
            used = flow[u].get(v, 0)
            if attrs["capacity"] - used > 0 and v not in visited:
                visited.add(v)
                stack.append(v)
        # residual reverse edges
        for u2 in graph.pred.get(u, {}):
            if flow[u2].get(u, 0) > 0 and u2 not in visited:
                visited.add(u2)
                stack.append(u2)
    cut: Set[str] = set()
    for v in list(cone) + list(leaves):
        if f"in_{v}" in visited and f"out_{v}" not in visited:
            cut.add(v)
    return cut


def flowmap(func: MultiFunction, k: int = 5) -> LutNetwork:
    """Depth-optimal LUT mapping of the function's BDD-MUX expansion."""
    gates, outputs, inputs = _gate_network_from_bdds(func)
    fanins: Dict[str, List[str]] = {
        name: [s for s in (sel, hi, lo) if s not in (CONST0, CONST1)]
        for name, sel, hi, lo in gates}
    full_fanins: Dict[str, List[str]] = {
        name: [sel, hi, lo] for name, sel, hi, lo in gates}

    label: Dict[str, int] = {s: 0 for s in inputs}
    cuts: Dict[str, Set[str]] = {}
    for name, sel, hi, lo in gates:
        p = max((label.get(s, 0) for s in fanins[name]), default=0)
        if p == 0:
            # Everything below is primary inputs; try the whole cone.
            cut = _min_height_cut(name, fanins, label, k)
            if cut is not None:
                label[name] = 1
                cuts[name] = cut
                continue
            label[name] = 1
            cuts[name] = set(fanins[name])
            continue
        cut = _min_height_cut(name, fanins, label, k)
        if cut is not None:
            label[name] = p
            cuts[name] = cut
        else:
            label[name] = p + 1
            cuts[name] = set(fanins[name])

    # Mapping phase: cover from the outputs.
    net = LutNetwork()
    for s in inputs:
        net.add_input(s)
    mapped: Dict[str, str] = {s: s for s in inputs}
    mapped[CONST0] = CONST0
    mapped[CONST1] = CONST1

    def simulate(signal: str, assignment: Dict[str, int],
                 memo: Dict[str, int]) -> int:
        if signal in assignment:
            return assignment[signal]
        if signal == CONST0:
            return 0
        if signal == CONST1:
            return 1
        if signal in memo:
            return memo[signal]
        sel, hi, lo = full_fanins[signal]
        s = simulate(sel, assignment, memo)
        value = (simulate(hi, assignment, memo) if s
                 else simulate(lo, assignment, memo))
        memo[signal] = value
        return value

    def map_root(signal: str) -> str:
        if signal in mapped:
            return mapped[signal]
        leaves = sorted(cuts[signal])
        leaf_signals = [map_root(s) for s in leaves]
        table = []
        m = len(leaves)
        for idx in range(1 << m):
            assignment = {leaf: (idx >> (m - 1 - j)) & 1
                          for j, leaf in enumerate(leaves)}
            table.append(simulate(signal, assignment, {}))
        result = net.add_lut(leaf_signals, table)
        mapped[signal] = result
        return result

    for out, signal in outputs.items():
        net.set_output(out, map_root(signal))
    return net
