"""BDD-based combinational equivalence checking.

The implementation network is symbolically simulated: every signal gets
a BDD over the specification's input variables, built in topological
order.  The check against an incompletely specified specification is
*extension containment*: for every output, ``lo <= impl <= hi``.  A
failing check produces a concrete counterexample input assignment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.bdd.manager import BDD
from repro.boolfunc.spec import MultiFunction
from repro.mapping.gatelevel import GateNetwork
from repro.mapping.lutnet import CONST0, CONST1, LutNetwork
from repro.obs.profiler import pulse


@dataclass
class EquivResult:
    """Outcome of an equivalence/extension check."""

    equivalent: bool
    #: Name of the first differing output (None when equivalent).
    failing_output: Optional[str] = None
    #: A concrete input assignment exposing the difference
    #: (input name -> 0/1), None when equivalent.
    counterexample: Optional[Dict[str, int]] = None

    def __bool__(self) -> bool:
        return self.equivalent


def lut_signal_bdds(net: LutNetwork, bdd: BDD,
                    input_vars: Dict[str, int]) -> Dict[str, int]:
    """Symbolic simulation of a LUT network, all signals.

    ``input_vars`` maps the network's primary input names to BDD
    variables.  Returns a BDD per *signal* name (inputs, every internal
    LUT node and the constants) — the per-output view is
    :func:`lut_network_bdds`; the engine's quarantine verification uses
    this form to check a single output's cone without requiring the
    network's outputs to be bound yet.
    """
    values: Dict[str, int] = {CONST0: BDD.FALSE, CONST1: BDD.TRUE}
    for name in net.inputs:
        values[name] = bdd.var(input_vars[name])
    for node in net.node_list():
        pulse()  # liveness: long simulations still beat per node
        fanins = [values[s] for s in node.fanins]
        # Build the node function by Shannon expansion over the table.
        result = BDD.FALSE
        k = node.fanin_count
        for idx, bit in enumerate(node.table):
            if not bit:
                continue
            term = BDD.TRUE
            for i in range(k):
                lit = fanins[i]
                if not (idx >> (k - 1 - i)) & 1:
                    lit = bdd.apply_not(lit)
                term = bdd.apply_and(term, lit)
            result = bdd.apply_or(result, term)
        values[node.name] = result
    return values


def lut_network_bdds(net: LutNetwork, bdd: BDD,
                     input_vars: Dict[str, int]) -> Dict[str, int]:
    """Symbolic simulation of a LUT network.

    ``input_vars`` maps the network's primary input names to BDD
    variables.  Returns a BDD per primary output name.
    """
    values = lut_signal_bdds(net, bdd, input_vars)
    return {out: values[sig] for out, sig in net.outputs.items()}


def gate_network_bdds(net: GateNetwork, bdd: BDD,
                      input_vars: Dict[str, int]) -> Dict[str, int]:
    """Symbolic simulation of a two-input gate network."""
    values: Dict[str, int] = {CONST0: BDD.FALSE, CONST1: BDD.TRUE}
    for name in net.inputs:
        values[name] = bdd.var(input_vars[name])

    def resolve(signal: str, neg: bool) -> int:
        node = values[signal]
        return bdd.apply_not(node) if neg else node

    for name in net._order:  # topological creation order
        pulse()  # liveness: long simulations still beat per gate
        gate = net.gates[name]
        (sa, na), (sb, nb) = gate.fanins
        a = resolve(sa, na)
        b = resolve(sb, nb)
        if gate.op == "and":
            values[name] = bdd.apply_and(a, b)
        elif gate.op == "or":
            values[name] = bdd.apply_or(a, b)
        else:
            values[name] = bdd.apply_xor(a, b)
    return {out: resolve(sig, neg)
            for out, (sig, neg) in net.outputs.items()}


def _structural_network_bdds(net, bdd: BDD,
                             input_vars: Dict[str, int]
                             ) -> Dict[str, int]:
    """Symbolic simulation of a structural SOP network."""
    values: Dict[str, int] = {name: bdd.var(var)
                              for name, var in input_vars.items()}
    for name in net.topological():
        node = net.nodes[name]
        cover = BDD.FALSE
        for pattern, _ in node.rows:
            term = BDD.TRUE
            for ch, s in zip(pattern, node.fanins):
                if ch == "1":
                    term = bdd.apply_and(term, values[s])
                elif ch == "0":
                    term = bdd.apply_and(term, bdd.apply_not(values[s]))
            cover = bdd.apply_or(cover, term)
        if not node.rows:
            values[name] = BDD.FALSE
        elif node.polarity == "0":
            values[name] = bdd.apply_not(cover)
        else:
            values[name] = cover
    return {out: values[out] for out in net.outputs}


def _counterexample(bdd: BDD, diff: int,
                    func: MultiFunction) -> Dict[str, int]:
    model = bdd.pick(diff) or {}
    full = {}
    for var, name in zip(func.inputs, func.input_names):
        full[name] = model.get(var, 0)
    return full


def check_extension(func: MultiFunction, net) -> EquivResult:
    """Does the network realise an extension of every output's ISF?

    Exact (BDD-based).  For completely specified functions this is plain
    equivalence.  Accepts LUT and gate networks.
    """
    from repro.network.netlist import Network

    bdd = func.bdd
    input_vars = dict(zip(func.input_names, func.inputs))
    if isinstance(net, LutNetwork):
        impl = lut_network_bdds(net, bdd, input_vars)
    elif isinstance(net, GateNetwork):
        impl = gate_network_bdds(net, bdd, input_vars)
    elif isinstance(net, Network):
        impl = _structural_network_bdds(net, bdd, input_vars)
    else:
        raise TypeError(f"unsupported network type {type(net)!r}")
    for name, isf in zip(func.output_names, func.outputs):
        g = impl[name]
        # Violations: onset not covered, or offset wrongly covered.
        missed = bdd.apply_diff(isf.lo, g)
        if missed != BDD.FALSE:
            return EquivResult(False, name,
                               _counterexample(bdd, missed, func))
        extra = bdd.apply_diff(g, isf.hi)
        if extra != BDD.FALSE:
            return EquivResult(False, name,
                               _counterexample(bdd, extra, func))
    return EquivResult(True)


def check_equivalence(func: MultiFunction, net) -> EquivResult:
    """Strict equivalence against the 0-completion of the specification.

    Use :func:`check_extension` when don't cares should be permissive.
    """
    completed = func.completed_lo()
    return check_extension(completed, net)
