"""Formal verification of mapped networks.

BDD-based combinational equivalence checking between a specification
(:class:`~repro.boolfunc.spec.MultiFunction`, possibly incompletely
specified) and an implementation (a
:class:`~repro.mapping.lutnet.LutNetwork` or a
:class:`~repro.mapping.gatelevel.GateNetwork`).  Because ROBDDs are
canonical, equivalence is pointer equality once both sides live in one
manager — the checks are exact, not sampled.
"""

from repro.verify.equiv import (
    EquivResult,
    check_extension,
    check_equivalence,
    gate_network_bdds,
    lut_network_bdds,
)

__all__ = [
    "EquivResult",
    "check_extension",
    "check_equivalence",
    "gate_network_bdds",
    "lut_network_bdds",
]
