"""Prime implicants from BDDs and exact two-level minimisation.

* :func:`all_primes` computes the complete prime set of a function by
  the classic BDD recursion: a prime either omits the top variable
  (then it is a prime of ``f0 AND f1``) or binds it (then it is a prime
  of the corresponding cofactor that is *not* an implicant of
  ``f0 AND f1``).
* :func:`essential_primes` extracts the primes that are the unique
  cover of some care minterm.
* :func:`exact_minimize` solves the prime covering problem by branch
  and bound — the Quine/McCluskey end-game — giving a provably
  cube-minimal cover for small functions.  The test suite uses it to
  audit the espresso heuristic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.bdd.manager import BDD
from repro.twolevel.cubes import PCover, PCube

_ZERO = 0b01
_ONE = 0b10
_DASH = 0b11


def _cube_to_bdd(bdd: BDD, cube: PCube,
                 variables: Sequence[int]) -> int:
    literals = {}
    for var, value in cube.literals():
        literals[variables[var]] = value
    return bdd.cube(literals)


def all_primes(bdd: BDD, f: int,
               variables: Sequence[int]) -> PCover:
    """All prime implicants of ``f`` over the given variables."""
    n = len(variables)
    var_index = {v: i for i, v in enumerate(variables)}
    memo: Dict[int, List[PCube]] = {}

    def primes(node: int) -> List[PCube]:
        if node == BDD.FALSE:
            return []
        if node == BDD.TRUE:
            return [PCube.full(n)]
        cached = memo.get(node)
        if cached is not None:
            return cached
        var = bdd.var_of(node)
        idx = var_index[var]
        f0 = bdd.low(node)
        f1 = bdd.high(node)
        f01 = bdd.apply_and(f0, f1)
        base = primes(f01)
        out = list(base)
        for q in primes(f0):
            if not bdd.leq(_cube_to_bdd(bdd, q, variables), f01):
                out.append(q.with_field(idx, _ZERO))
        for q in primes(f1):
            if not bdd.leq(_cube_to_bdd(bdd, q, variables), f01):
                out.append(q.with_field(idx, _ONE))
        memo[node] = out
        return out

    support = bdd.support(f)
    extra = support - set(variables)
    if extra:
        raise ValueError(f"function depends on extra variables {extra}")
    return PCover(n, primes(f))


def essential_primes(bdd: BDD, f: int, variables: Sequence[int],
                     primes: Optional[PCover] = None) -> PCover:
    """Primes that uniquely cover some onset minterm of ``f``."""
    if primes is None:
        primes = all_primes(bdd, f, variables)
    prime_bdds = [_cube_to_bdd(bdd, p, variables) for p in primes]
    essentials = []
    for i, p in enumerate(primes):
        others = BDD.FALSE
        for j, pb in enumerate(prime_bdds):
            if j != i:
                others = bdd.apply_or(others, pb)
        # Essential iff p covers onset points nothing else covers.
        alone = bdd.apply_diff(
            bdd.apply_and(prime_bdds[i], f), others)
        if alone != BDD.FALSE:
            essentials.append(p)
    return PCover(primes.n, essentials)


def exact_minimize(bdd: BDD, onset: int, dc: int,
                   variables: Sequence[int],
                   node_limit: int = 400000) -> Optional[PCover]:
    """A cube-minimal prime cover of ``[onset, onset OR dc]``.

    Branch and bound over the primes of ``onset OR dc``: repeatedly pick
    an uncovered onset point, branch on the primes covering it.  Returns
    None when the search exceeds ``node_limit`` B&B nodes.
    """
    upper = bdd.apply_or(onset, dc)
    primes = all_primes(bdd, upper, variables)
    prime_bdds = [_cube_to_bdd(bdd, p, variables) for p in primes]

    best: List[Optional[List[int]]] = [None]
    best_size = [len(primes.cubes) + 1]
    budget = [node_limit]

    def branch(chosen: List[int], covered: int) -> None:
        if budget[0] <= 0:
            return
        budget[0] -= 1
        if len(chosen) >= best_size[0]:
            return
        uncovered = bdd.apply_diff(onset, covered)
        if uncovered == BDD.FALSE:
            best[0] = list(chosen)
            best_size[0] = len(chosen)
            return
        # Branch on a concrete uncovered onset point.
        model = bdd.pick(uncovered)
        point = bdd.cube({v: model.get(v, 0) for v in variables})
        candidates = [i for i, pb in enumerate(prime_bdds)
                      if bdd.leq(point, pb)]
        for i in candidates:
            chosen.append(i)
            branch(chosen, bdd.apply_or(covered, prime_bdds[i]))
            chosen.pop()

    branch([], BDD.FALSE)
    if best[0] is None:
        return None
    return PCover(primes.n, [primes.cubes[i] for i in best[0]])
