"""Two-level (sum-of-products) logic minimisation.

An espresso-style minimiser over positional-cube covers: EXPAND (make
cubes prime against the onset+DC), single-cube containment, IRREDUNDANT
(tautology-based cover checks) and REDUCE, iterated to a fixpoint.  The
MCNC benchmarks the paper uses were espresso-minimised PLAs; this
substrate lets the repository go from raw truth tables / cube lists to
realistic minimised covers without external tools.
"""

from repro.twolevel.complement import complement, sharp
from repro.twolevel.cubes import PCube, PCover
from repro.twolevel.espresso import espresso, minimize_function
from repro.twolevel.primes import (
    all_primes,
    essential_primes,
    exact_minimize,
)
from repro.twolevel.multi_output import (
    MOCover,
    MOCube,
    minimize_multi,
    minimize_multifunction,
)

__all__ = [
    "complement",
    "sharp",
    "all_primes",
    "essential_primes",
    "exact_minimize",
    "PCube",
    "PCover",
    "espresso",
    "minimize_function",
    "MOCover",
    "MOCube",
    "minimize_multi",
    "minimize_multifunction",
]
