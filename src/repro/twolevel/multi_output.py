"""Multi-output two-level minimisation.

Real espresso treats an ``m``-output function as a single-output
function over ``n + log2(m)``-ish extended cubes; the practically
important effect is *cube sharing*: one product term feeding several
outputs is counted (and realised in a PLA) once.  We implement the
standard multi-output extension of the positional-cube framework: a cube
carries an output *tag mask*; containment/tautology checks run per
output against the union of cubes tagged for that output.

The minimisation loop mirrors the single-output one:

* EXPAND raises input literals (a cube must stay inside every tagged
  output's onset+DC) and also tries to *raise output tags* (sharing);
* IRREDUNDANT drops cubes (or single output tags) covered by the rest;
* the loop stops when the (cube, literal) cost stabilises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.boolfunc.spec import MultiFunction
from repro.twolevel.cubes import PCover, PCube

_DASH = 0b11


@dataclass(frozen=True)
class MOCube:
    """A multi-output cube: input part + output tag mask (bit j set =
    the cube feeds output j)."""

    cube: PCube
    tags: int

    def with_tags(self, tags: int) -> "MOCube":
        return MOCube(self.cube, tags)


class MOCover:
    """A multi-output cover."""

    def __init__(self, n: int, m: int,
                 cubes: Sequence[MOCube] = ()) -> None:
        self.n = n
        self.m = m
        self.cubes: List[MOCube] = list(cubes)

    def output_cover(self, j: int) -> PCover:
        """The single-output cover of output ``j``."""
        return PCover(self.n, [mc.cube for mc in self.cubes
                               if (mc.tags >> j) & 1])

    def cube_count(self) -> int:
        """Distinct product terms (the PLA row count)."""
        return len(self.cubes)

    def literal_count(self) -> int:
        """Total input literals."""
        return sum(mc.cube.num_literals for mc in self.cubes)

    def covers_minterm(self, j: int, minterm: int) -> bool:
        """Does output ``j`` cover the minterm?"""
        return any((mc.tags >> j) & 1 and mc.cube.covers_minterm(minterm)
                   for mc in self.cubes)

    def to_pla(self) -> str:
        """Espresso fd-type PLA text of the cover (one row per cube —
        shared cubes stay shared, like a real PLA)."""
        lines = [f".i {self.n}", f".o {self.m}", ".type fd",
                 f".p {len(self.cubes)}"]
        for mc in self.cubes:
            out_plane = "".join(
                "1" if (mc.tags >> j) & 1 else "0" for j in range(self.m))
            lines.append(f"{mc.cube} {out_plane}")
        lines.append(".e")
        return "\n".join(lines) + "\n"


def _care_covers(func_onsets: Sequence[PCover],
                 func_dcs: Sequence[PCover]) -> List[PCover]:
    return [PCover(on.n, list(on.cubes) + list(dc.cubes))
            for on, dc in zip(func_onsets, func_dcs)]


def minimize_multi(onsets: Sequence[PCover],
                   dcs: Optional[Sequence[PCover]] = None,
                   max_iterations: int = 6) -> MOCover:
    """Minimise a multi-output cover with cube sharing.

    ``onsets[j]``/``dcs[j]`` define output ``j``.  Returns an
    :class:`MOCover` equivalent to the inputs over each care set.
    """
    m = len(onsets)
    if m == 0:
        raise ValueError("need at least one output")
    n = onsets[0].n
    if dcs is None:
        dcs = [PCover(n, []) for _ in range(m)]
    care = _care_covers(onsets, dcs)

    # Initial cover: each output's cubes tagged individually, identical
    # input parts merged by OR-ing tags.
    by_cube: dict = {}
    for j, cover in enumerate(onsets):
        for cube in cover:
            by_cube[cube] = by_cube.get(cube, 0) | (1 << j)
    cubes = [MOCube(cube, tags) for cube, tags in by_cube.items()]
    cover = MOCover(n, m, cubes)

    best_cost = (cover.cube_count() + 1, 0)
    for _ in range(max_iterations):
        # EXPAND input parts: the raised cube must stay inside the
        # onset+DC of every tagged output.
        expanded: List[MOCube] = []
        for mc in cover.cubes:
            current = mc.cube
            for var, _value in list(current.literals()):
                candidate = current.with_field(var, _DASH)
                if all(care[j].covers_cube(candidate)
                       for j in range(m) if (mc.tags >> j) & 1):
                    current = candidate
            # Raise output tags where the cube fits anyway (sharing).
            tags = mc.tags
            for j in range(m):
                if not (tags >> j) & 1 and care[j].covers_cube(current):
                    tags |= 1 << j
            expanded.append(MOCube(current, tags))
        # Merge identical input parts.
        by_cube = {}
        for mc in expanded:
            by_cube[mc.cube] = by_cube.get(mc.cube, 0) | mc.tags
        cubes = [MOCube(c, t) for c, t in by_cube.items()]
        # Multi-output containment: drop a cube if, for every tagged
        # output, the rest of that output's cover (plus DC) covers it.
        kept: List[MOCube] = []
        work = sorted(cubes, key=lambda mc: -mc.cube.num_literals)
        for idx, mc in enumerate(work):
            others_by_output = []
            redundant = True
            for j in range(m):
                if not (mc.tags >> j) & 1:
                    continue
                rest = PCover(n, [o.cube for k, o in enumerate(work)
                                  if k != idx and (o.tags >> j) & 1
                                  and (o in kept or k > idx)]
                              + list(dcs[j].cubes))
                if not rest.covers_cube(mc.cube):
                    redundant = False
                    break
            if not redundant:
                kept.append(mc)
        cover = MOCover(n, m, kept)
        cost = (cover.cube_count(), cover.literal_count())
        if cost >= best_cost:
            break
        best_cost = cost
    return cover


def minimize_multifunction(func: MultiFunction) -> MOCover:
    """Multi-output minimisation of a (small) :class:`MultiFunction`."""
    n = func.num_inputs
    onsets = []
    dcs = []
    for j in range(func.num_outputs):
        onset_minterms = []
        dc_minterms = []
        for k in range(1 << n):
            bits = [(k >> (n - 1 - i)) & 1 for i in range(n)]
            value = func.eval(dict(zip(func.inputs, bits)))[j]
            if value == 1:
                onset_minterms.append(k)
            elif value is None:
                dc_minterms.append(k)
        onsets.append(PCover.from_minterms(onset_minterms, n)
                      if onset_minterms else PCover(n, []))
        dcs.append(PCover.from_minterms(dc_minterms, n)
                   if dc_minterms else PCover(n, []))
    return minimize_multi(onsets, dcs)
