"""Positional-cube algebra.

Each variable occupies two bits of an integer: ``01`` = literal ``0``
(variable complemented), ``10`` = literal ``1``, ``11`` = don't care
(missing literal).  ``00`` in any field marks the empty cube.  This is
the classic espresso encoding: intersection is bitwise AND, containment
is a masked comparison, and cofactoring/tautology use the
unate-recursive paradigm.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

_ZERO = 0b01
_ONE = 0b10
_DASH = 0b11


class PCube:
    """An immutable positional cube over ``n`` variables."""

    __slots__ = ("bits", "n")

    def __init__(self, bits: int, n: int):
        self.bits = bits
        self.n = n

    # -- construction ----------------------------------------------------

    @staticmethod
    def full(n: int) -> "PCube":
        """The universal cube (all don't cares)."""
        bits = 0
        for _ in range(n):
            bits = (bits << 2) | _DASH
        return PCube(bits, n)

    @staticmethod
    def from_string(text: str) -> "PCube":
        """Parse ``'01-'``-style cube text (index 0 = variable 0)."""
        n = len(text)
        bits = 0
        for ch in text:
            bits <<= 2
            if ch == "0":
                bits |= _ZERO
            elif ch == "1":
                bits |= _ONE
            elif ch == "-":
                bits |= _DASH
            else:
                raise ValueError(f"bad cube literal {ch!r}")
        return PCube(bits, n)

    @staticmethod
    def from_minterm(minterm: int, n: int) -> "PCube":
        """The cube of one minterm (bit ``n-1-i`` of the index = var i)."""
        bits = 0
        for i in range(n):
            bits <<= 2
            bits |= _ONE if (minterm >> (n - 1 - i)) & 1 else _ZERO
        return PCube(bits, n)

    # -- field access ----------------------------------------------------

    def field(self, var: int) -> int:
        """The 2-bit field of variable ``var`` (0 = leftmost)."""
        shift = 2 * (self.n - 1 - var)
        return (self.bits >> shift) & 0b11

    def with_field(self, var: int, value: int) -> "PCube":
        """Copy with variable ``var``'s field replaced."""
        shift = 2 * (self.n - 1 - var)
        cleared = self.bits & ~(0b11 << shift)
        return PCube(cleared | (value << shift), self.n)

    def literals(self) -> Iterator[Tuple[int, int]]:
        """Yield ``(var, value)`` for each bound literal (value 0/1)."""
        for var in range(self.n):
            f = self.field(var)
            if f == _ZERO:
                yield var, 0
            elif f == _ONE:
                yield var, 1

    @property
    def num_literals(self) -> int:
        """Number of bound literals."""
        return sum(1 for _ in self.literals())

    # -- algebra -----------------------------------------------------------

    def is_empty(self) -> bool:
        """Does any field read 00 (contradictory literal)?"""
        bits = self.bits
        for _ in range(self.n):
            if bits & 0b11 == 0:
                return True
            bits >>= 2
        return False

    def intersect(self, other: "PCube") -> Optional["PCube"]:
        """Cube intersection, or None if empty."""
        cube = PCube(self.bits & other.bits, self.n)
        return None if cube.is_empty() else cube

    def contains(self, other: "PCube") -> bool:
        """Is ``other`` a sub-cube of this cube?"""
        return (self.bits | other.bits) == self.bits

    def covers_minterm(self, minterm: int) -> bool:
        """Does the cube cover this minterm index (MSB-first)?"""
        return self.contains(PCube.from_minterm(minterm, self.n))

    def cofactor(self, other: "PCube") -> Optional["PCube"]:
        """The cofactor of this cube against ``other`` (Shannon on
        cubes): None when the cubes do not intersect; bound variables of
        ``other`` become free in the result."""
        if PCube(self.bits & other.bits, self.n).is_empty():
            return None
        result = self.bits
        bits = other.bits
        for i in range(self.n):
            shift = 2 * (self.n - 1 - i)
            if (bits >> shift) & 0b11 != _DASH:
                result |= _DASH << shift
        return PCube(result, self.n)

    def supercube(self, other: "PCube") -> "PCube":
        """Smallest cube containing both."""
        return PCube(self.bits | other.bits, self.n)

    def __eq__(self, other) -> bool:
        return (isinstance(other, PCube) and self.bits == other.bits
                and self.n == other.n)

    def __hash__(self) -> int:
        return hash((self.bits, self.n))

    def __str__(self) -> str:
        chars = []
        for var in range(self.n):
            f = self.field(var)
            chars.append({_ZERO: "0", _ONE: "1", _DASH: "-"}.get(f, "?"))
        return "".join(chars)

    def __repr__(self) -> str:
        return f"PCube({self})"


class PCover:
    """A list of positional cubes (a single-output SOP cover)."""

    def __init__(self, n: int, cubes: Iterable[PCube] = ()):
        self.n = n
        self.cubes: List[PCube] = []
        for cube in cubes:
            if cube.n != n:
                raise ValueError("cube arity mismatch")
            self.cubes.append(cube)

    @staticmethod
    def from_strings(rows: Sequence[str]) -> "PCover":
        """Build from ``'01-'``-style rows (all the same width)."""
        if not rows:
            raise ValueError("need at least one row to infer arity")
        return PCover(len(rows[0]), [PCube.from_string(r) for r in rows])

    @staticmethod
    def from_minterms(minterms: Iterable[int], n: int) -> "PCover":
        """One cube per minterm."""
        return PCover(n, [PCube.from_minterm(m, n) for m in minterms])

    def __len__(self) -> int:
        return len(self.cubes)

    def __iter__(self) -> Iterator[PCube]:
        return iter(self.cubes)

    def covers_minterm(self, minterm: int) -> bool:
        """Is the minterm in the union of the cubes?"""
        return any(c.covers_minterm(minterm) for c in self.cubes)

    def cofactor(self, cube: PCube) -> "PCover":
        """Cover cofactored against a cube."""
        out = []
        for c in self.cubes:
            cf = c.cofactor(cube)
            if cf is not None:
                out.append(cf)
        return PCover(self.n, out)

    def literal_count(self) -> int:
        """Total bound literals across the cover."""
        return sum(c.num_literals for c in self.cubes)

    def is_tautology(self) -> bool:
        """Does the cover equal the universal function?

        Unate-recursive paradigm: unate reduction (a cover unate in all
        variables is a tautology iff it contains the universal cube),
        then Shannon split on a binate variable.
        """
        cubes = self.cubes
        if not cubes:
            return False
        full = PCube.full(self.n)
        # Quick win: an all-dash row is the universal cube.
        if any(c.bits == full.bits for c in cubes):
            return True
        # Find the most binate variable; drop unate variables' columns.
        best_var = None
        best_score = -1
        for var in range(self.n):
            zeros = ones = 0
            for c in cubes:
                f = c.field(var)
                if f == _ZERO:
                    zeros += 1
                elif f == _ONE:
                    ones += 1
            if zeros and ones:
                score = min(zeros, ones)
                if score > best_score:
                    best_score = score
                    best_var = var
        if best_var is None:
            # Unate in every variable: tautology iff some cube has no
            # literals at all (the universal cube) — checked above — OR
            # the cover still covers everything through a single unate
            # column... which cannot happen; so check the one remaining
            # corner: a variable column where every cube is dash was
            # already neutral.  Remaining answer: no.
            return False
        lo = self.cofactor(PCube.full(self.n).with_field(best_var, _ZERO))
        if not lo.is_tautology():
            return False
        hi = self.cofactor(PCube.full(self.n).with_field(best_var, _ONE))
        return hi.is_tautology()

    def covers_cube(self, cube: PCube) -> bool:
        """Is ``cube`` contained in the union of the cover?"""
        return self.cofactor(cube).is_tautology()

    def __str__(self) -> str:
        return "\n".join(str(c) for c in self.cubes)
