"""Cover complementation by unate recursion (espresso COMPLEMENT).

The complement of a cover is computed with the same unate-recursive
paradigm as the tautology check: pick the most binate variable, recurse
on both cofactors, and reassemble

    NOT f  =  x' * NOT(f|x=0)  +  x * NOT(f|x=1)

with a merge step that lifts cubes not depending on the split variable.
Terminal cases are handled by unate-cover rules.  The complement is the
missing piece for offset-aware EXPAND strategies and for sharp
operations on covers.
"""

from __future__ import annotations

from typing import List, Optional

from repro.twolevel.cubes import PCover, PCube

_ZERO = 0b01
_ONE = 0b10
_DASH = 0b11


def _most_binate_var(cover: PCover) -> Optional[int]:
    best_var = None
    best_score = -1
    for var in range(cover.n):
        zeros = ones = 0
        for cube in cover.cubes:
            f = cube.field(var)
            if f == _ZERO:
                zeros += 1
            elif f == _ONE:
                ones += 1
        if zeros or ones:
            # Prefer truly binate variables; fall back to any bound one.
            score = (min(zeros, ones) * 1000) + zeros + ones
            if score > best_score:
                best_score = score
                best_var = var
    return best_var


def _single_cube_complement(cube: PCube) -> List[PCube]:
    """De Morgan on one cube: one complement cube per literal."""
    out = []
    for var, value in cube.literals():
        full = PCube.full(cube.n)
        out.append(full.with_field(var, _ZERO if value else _ONE))
    return out


def complement(cover: PCover) -> PCover:
    """The complement cover of a single-output cover."""
    n = cover.n
    # Terminal cases.
    if not cover.cubes:
        return PCover(n, [PCube.full(n)])
    if any(c.bits == PCube.full(n).bits for c in cover.cubes):
        return PCover(n, [])
    if len(cover.cubes) == 1:
        return PCover(n, _single_cube_complement(cover.cubes[0]))
    if cover.is_tautology():
        return PCover(n, [])

    var = _most_binate_var(cover)
    if var is None:
        # No bound literal anywhere and not a tautology: impossible,
        # because such a cover is either empty (handled) or universal.
        return PCover(n, [])
    lo_cofactor = cover.cofactor(PCube.full(n).with_field(var, _ZERO))
    hi_cofactor = cover.cofactor(PCube.full(n).with_field(var, _ONE))
    lo_comp = complement(lo_cofactor)
    hi_comp = complement(hi_cofactor)

    out: List[PCube] = []
    lo_set = {c.bits for c in lo_comp.cubes}
    for cube in lo_comp.cubes:
        if cube.bits in {c.bits for c in hi_comp.cubes}:
            out.append(cube)  # independent of the split variable
        else:
            out.append(cube.with_field(var, _ZERO))
    for cube in hi_comp.cubes:
        if cube.bits in lo_set:
            continue  # already lifted
        out.append(cube.with_field(var, _ONE))
    return PCover(n, out)


def sharp(cover: PCover, other: PCover) -> PCover:
    """The sharp operation ``cover AND NOT other`` as a cover."""
    comp = complement(other)
    out: List[PCube] = []
    for a in cover.cubes:
        for b in comp.cubes:
            c = a.intersect(b)
            if c is not None:
                out.append(c)
    # Single-cube containment cleanup.
    kept: List[PCube] = []
    for cube in sorted(out, key=lambda c: -c.num_literals):
        if not any(k.contains(cube) for k in kept):
            kept.append(cube)
    return PCover(cover.n, kept)
