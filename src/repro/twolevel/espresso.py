"""An espresso-style minimisation loop: EXPAND / IRREDUNDANT / REDUCE.

Heuristic two-level minimisation of a single-output cover ``F`` against
a don't-care cover ``D``:

* **EXPAND** — raise each cube's literals (make it prime) as long as the
  expanded cube stays inside ``onset + DC`` (checked by the
  unate-recursive tautology of the cofactored cover), then drop cubes
  contained in another cube;
* **IRREDUNDANT** — remove cubes covered by the rest of the cover plus
  the don't cares;
* **REDUCE** — shrink cubes to the smallest cube still covering their
  essential part, opening room for the next EXPAND;
* iterate until the (cube count, literal count) cost stops improving.

This is a faithful-in-spirit compact reimplementation, not a port: the
cube algebra and the tautology-based checks are the real thing, the
weighting/ordering heuristics are simplified.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.boolfunc.spec import MultiFunction
from repro.twolevel.cubes import PCover, PCube

_ZERO = 0b01
_ONE = 0b10
_DASH = 0b11


def _expand_cube(cube: PCube, care_cover: PCover) -> PCube:
    """Raise literals of ``cube`` while it stays inside ``care_cover``
    (= onset + DC).  Literals are tried in descending column frequency
    so commonly-bound variables are freed last."""
    current = cube
    literals = list(current.literals())
    # Order: free the literal whose removal gives the biggest cube first
    # (all removals add the same volume, so order by variable index for
    # determinism; a production espresso weighs against the offset).
    for var, _value in literals:
        candidate = current.with_field(var, _DASH)
        if care_cover.covers_cube(candidate):
            current = candidate
    return current


def _single_cube_containment(cover: PCover) -> PCover:
    """Drop cubes contained in another cube of the cover."""
    kept: List[PCube] = []
    cubes = sorted(cover.cubes, key=lambda c: -c.num_literals)
    for cube in cubes:
        if any(other.contains(cube) for other in kept):
            continue
        kept.append(cube)
    return PCover(cover.n, kept)


def _irredundant(cover: PCover, dc: PCover) -> PCover:
    """Remove cubes covered by the remaining cover plus the DC set."""
    cubes = list(cover.cubes)
    changed = True
    while changed:
        changed = False
        for i, cube in enumerate(cubes):
            rest = PCover(cover.n,
                          [c for j, c in enumerate(cubes) if j != i]
                          + list(dc.cubes))
            if rest.covers_cube(cube):
                del cubes[i]
                changed = True
                break
    return PCover(cover.n, cubes)


def _reduce_cube(cube: PCube, others: PCover, dc: PCover) -> PCube:
    """Shrink ``cube`` by re-binding free variables while the rest of
    the cover (plus DC) still covers what the shrink gives up."""
    current = cube
    for var in range(cube.n):
        if current.field(var) != _DASH:
            continue
        for value in (_ZERO, _ONE):
            candidate = current.with_field(var, value)
            surrendered = current.with_field(
                var, _ONE if value == _ZERO else _ZERO)
            helper = PCover(cube.n, list(others.cubes) + list(dc.cubes))
            if helper.covers_cube(surrendered):
                current = candidate
                break
    return current


def espresso(onset: PCover, dc: Optional[PCover] = None,
             max_iterations: int = 8) -> PCover:
    """Minimise ``onset`` against the optional don't-care cover.

    Returns a cover equivalent to ``onset`` over the care set, with at
    most as many cubes.
    """
    n = onset.n
    if dc is None:
        dc = PCover(n, [])
    cover = _single_cube_containment(onset)
    care = PCover(n, list(onset.cubes) + list(dc.cubes))

    best_cover = cover
    best_cost: Tuple[int, int] = (len(cover) + 1, 0)  # force 1st accept
    for _ in range(max_iterations):
        # EXPAND
        expanded = PCover(n, [_expand_cube(c, care) for c in cover])
        expanded = _single_cube_containment(expanded)
        # IRREDUNDANT
        irred = _irredundant(expanded, dc)
        cost = (len(irred), irred.literal_count())
        if cost >= best_cost:
            break
        best_cost = cost
        best_cover = irred
        cover = irred
        # REDUCE (prepare the next round).  Cubes are processed in
        # sequence against the ALREADY-REDUCED earlier cubes — two cubes
        # must not both surrender a shared region.
        current = list(cover.cubes)
        for i in range(len(current)):
            others = PCover(n, current[:i] + current[i + 1:])
            current[i] = _reduce_cube(current[i], others, dc)
        cover = PCover(n, current)
    return _single_cube_containment(best_cover)


def minimize_function(func: MultiFunction,
                      output_index: int = 0) -> PCover:
    """Espresso-minimise one output of a :class:`MultiFunction`.

    Intended for small functions (the onset is enumerated as minterms).
    """
    n = func.num_inputs
    onset_minterms = []
    dc_minterms = []
    for k in range(1 << n):
        bits = [(k >> (n - 1 - i)) & 1 for i in range(n)]
        value = func.eval(dict(zip(func.inputs, bits)))[output_index]
        if value == 1:
            onset_minterms.append(k)
        elif value is None:
            dc_minterms.append(k)
    onset = PCover.from_minterms(onset_minterms, n)
    dc = PCover.from_minterms(dc_minterms, n)
    if not onset_minterms:
        return PCover(n, [])
    return espresso(onset, dc)
