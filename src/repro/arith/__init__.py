"""Arithmetic function generators and reference circuits.

* :mod:`repro.arith.adders` — the ``n``-bit adder as a
  :class:`~repro.boolfunc.spec.MultiFunction` (built symbolically), plus
  the **conditional-sum adder** gate network (Sklansky) — the baseline of
  the paper's Figure 2 — and a ripple-carry reference.
* :mod:`repro.arith.multipliers` — the partial multiplier ``pm_n`` of
  Section 6.1 and the **Wallace-tree multiplier** gate network baseline.
"""

from repro.arith.adders import (
    adder_function,
    conditional_sum_adder,
    ripple_carry_adder,
)
from repro.arith.multipliers import (
    partial_multiplier_function,
    wallace_tree_multiplier,
    multiplier_function,
)

__all__ = [
    "adder_function",
    "conditional_sum_adder",
    "ripple_carry_adder",
    "partial_multiplier_function",
    "wallace_tree_multiplier",
    "multiplier_function",
]
