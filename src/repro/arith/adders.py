"""Adders: the decomposition target function and the gate-level baselines.

Figure 2 of the paper shows the automatically generated two-input-gate
realisation of an 8-bit adder (49 gates) against the classic
**conditional-sum adder** of Sklansky (90 gates).  We provide:

* :func:`adder_function` — the ``n+n -> n+1`` bit addition as a
  :class:`MultiFunction` built symbolically (BDDs of adders are linear in
  ``n``, so this scales far beyond truth tables);
* :func:`conditional_sum_adder` — the Sklansky conditional-sum gate
  network, built exactly as in the textbook construction: blocks compute
  both possible results (carry-in 0 and 1) and levels of 2:1 MUXes select;
* :func:`ripple_carry_adder` — full-adder chain, as a second reference.

All gate networks use the same cost model as
:mod:`repro.mapping.gatelevel` (two-input AND/OR/XOR, free negation), so
gate counts are directly comparable with the decomposed circuits.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.bdd.manager import BDD
from repro.boolfunc.spec import ISF, MultiFunction
from repro.mapping.gatelevel import GateNetwork

Signal = Tuple[str, bool]


def adder_function(n: int, carry_in: bool = False) -> MultiFunction:
    """The ``n``-bit adder ``(x + y [+ cin])`` as a MultiFunction.

    Inputs (MSB names first in the name list, variable ids ascending from
    LSB): ``x0..x{n-1}`` and ``y0..y{n-1}`` with index = bit significance,
    optionally ``cin``.  Outputs ``s0..s{n}`` (``s{n}`` is the carry out).
    """
    if n < 1:
        raise ValueError("n must be positive")
    bdd = BDD(0)
    x_vars = [bdd.add_var(f"x{i}") for i in range(n)]
    y_vars = [bdd.add_var(f"y{i}") for i in range(n)]
    inputs = x_vars + y_vars
    input_names = [f"x{i}" for i in range(n)] + [f"y{i}" for i in range(n)]
    if carry_in:
        cin = bdd.add_var("cin")
        inputs.append(cin)
        input_names.append("cin")
        carry = bdd.var(cin)
    else:
        carry = BDD.FALSE
    sums: List[int] = []
    for i in range(n):
        a = bdd.var(x_vars[i])
        b = bdd.var(y_vars[i])
        sums.append(bdd.apply_xor(bdd.apply_xor(a, b), carry))
        carry = bdd.apply_or(
            bdd.apply_and(a, b),
            bdd.apply_and(carry, bdd.apply_or(a, b)))
    sums.append(carry)
    outputs = [ISF.complete(s) for s in sums]
    output_names = [f"s{i}" for i in range(n + 1)]
    return MultiFunction(bdd, inputs, outputs,
                         input_names=input_names, output_names=output_names)


def _full_adder(net: GateNetwork, a: Signal, b: Signal,
                c: Signal) -> Tuple[Signal, Signal]:
    """Full adder from 5 two-input gates; returns (sum, carry)."""
    axb = net.add_gate("xor", a, b)
    s = net.add_gate("xor", axb, c)
    t1 = net.add_gate("and", a, b)
    t2 = net.add_gate("and", axb, c)
    carry = net.add_gate("or", t1, t2)
    return s, carry


def _half_adder(net: GateNetwork, a: Signal,
                b: Signal) -> Tuple[Signal, Signal]:
    """Half adder: (sum, carry) in 2 gates."""
    return net.add_gate("xor", a, b), net.add_gate("and", a, b)


def _mux(net: GateNetwork, sel: Signal, hi: Signal, lo: Signal) -> Signal:
    """2:1 MUX (sel ? hi : lo) with the standard local optimisations.

    Complementary data (``hi == NOT lo``) costs one XOR; equal data is a
    wire; the general case costs three gates.
    """
    if hi == lo:
        return hi
    if hi[0] == lo[0] and hi[1] != lo[1]:
        # sel ? ~x : x  ==  sel XOR x (up to the stored polarity).
        sig, neg = net.add_gate("xor", sel, lo)
        return (sig, neg)
    t1 = net.add_gate("and", sel, hi)
    t2 = net.add_gate("and", (sel[0], not sel[1]), lo)
    return net.add_gate("or", t1, t2)


def _mux_monotone(net: GateNetwork, sel: Signal, hi: Signal,
                  lo: Signal) -> Signal:
    """2:1 MUX for ``lo -> hi`` (e.g. block carries, where the carry-in-1
    carry always dominates the carry-in-0 carry): two gates,
    ``lo OR (sel AND hi)``."""
    t = net.add_gate("and", sel, hi)
    return net.add_gate("or", lo, t)


def ripple_carry_adder(n: int) -> GateNetwork:
    """Full-adder chain; ``5n - 3`` gates (half adder at the bottom)."""
    net = GateNetwork()
    xs = [(net.add_input(f"x{i}"), False) for i in range(n)]
    ys = [(net.add_input(f"y{i}"), False) for i in range(n)]
    s0, carry = _half_adder(net, xs[0], ys[0])
    net.set_output("s0", s0)
    for i in range(1, n):
        si, carry = _full_adder(net, xs[i], ys[i], carry)
        net.set_output(f"s{i}", si)
    net.set_output(f"s{n}", carry)
    return net


def conditional_sum_add(net: GateNetwork, xs: List[Signal],
                        ys: List[Signal]) -> List[Signal]:
    """Conditional-sum addition of two equal-width signal vectors.

    Returns ``n + 1`` sum signals (carry-out last).  Usable both for the
    standalone adder baseline and as the fast final stage of the
    Wallace-tree multiplier.
    """
    if len(xs) != len(ys) or not xs:
        raise ValueError("operands must be non-empty and equal width")
    # Blocks: (sums0, carry0, sums1, carry1) — results for carry-in 0/1.
    # Per bit: s0 = a^b (1), c0 = a&b (1), s1 = ~(a^b) (free), c1 = a|b (1).
    blocks: List[Tuple[List[Signal], Signal, List[Signal], Signal]] = []
    for a, b in zip(xs, ys):
        s0 = net.add_gate("xor", a, b)
        c0 = net.add_gate("and", a, b)
        s1 = (s0[0], not s0[1])
        c1 = net.add_gate("or", a, b)
        blocks.append(([s0], c0, [s1], c1))

    while len(blocks) > 1:
        merged = []
        for i in range(0, len(blocks) - 1, 2):
            lo_s0, lo_c0, lo_s1, lo_c1 = blocks[i]
            hi_s0, hi_c0, hi_s1, hi_c1 = blocks[i + 1]
            # Carry-in 0 result: low block with cin 0; high block selected
            # by the low block's carry.
            s0 = lo_s0 + [_mux(net, lo_c0, s1x, s0x)
                          for s1x, s0x in zip(hi_s1, hi_s0)]
            c0 = _mux_monotone(net, lo_c0, hi_c1, hi_c0)
            # Carry-in 1 result.
            s1 = lo_s1 + [_mux(net, lo_c1, sh, sl)
                          for sh, sl in zip(hi_s1, hi_s0)]
            c1 = _mux_monotone(net, lo_c1, hi_c1, hi_c0)
            merged.append((s0, c0, s1, c1))
        if len(blocks) % 2:
            merged.append(blocks[-1])
        blocks = merged

    sums0, carry0, _, _ = blocks[0]
    return sums0 + [carry0]


def conditional_sum_adder(n: int) -> GateNetwork:
    """Sklansky's conditional-sum adder as a two-input gate network.

    Every bit position first computes sum and carry for both possible
    incoming carries; ``log2(n)`` levels of MUX pairs then combine blocks
    of doubling width.  For ``n = 8`` this costs ~90 gates under the
    free-inverter cost model — the number the paper quotes (our
    construction additionally prunes dead conditional variants, landing
    slightly below).
    """
    if n < 1:
        raise ValueError("n must be positive")
    net = GateNetwork()
    xs = [(net.add_input(f"x{i}"), False) for i in range(n)]
    ys = [(net.add_input(f"y{i}"), False) for i in range(n)]
    sums = conditional_sum_add(net, xs, ys)
    for i, s in enumerate(sums):
        net.set_output(f"s{i}", s)
    return net
