"""Multipliers: the partial multiplier ``pm_n`` and the Wallace baseline.

Section 6.1 of the paper decomposes the *partial multiplier*
``pm_n : {0,1}^{n^2} -> {0,1}^{2n}``: the inputs are the ``n^2`` partial
product bits ``p_{i,j} = a_i & b_j`` and the outputs are the ``2n``
product bits of ``sum_{i,j} p_{i,j} 2^{i+j}``.  The decomposed circuit is
a column-wise adder scheme with ``n^2 + O(n log^2 n)`` two-input gates,
compared against the Wallace-tree multiplier (``~10n^2 - 20n`` gates).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.bdd.manager import BDD
from repro.boolfunc.spec import ISF, MultiFunction
from repro.arith.adders import _full_adder, _half_adder
from repro.mapping.gatelevel import GateNetwork

Signal = Tuple[str, bool]


def partial_multiplier_function(n: int) -> MultiFunction:
    """``pm_n``: sum the ``n x n`` partial-product matrix.

    Inputs ``p_i_j`` (weight ``2**(i+j)``), outputs ``r0..r{2n-1}``.
    Built symbolically by column-wise binary addition on BDDs.
    """
    if n < 2:
        raise ValueError("n must be at least 2")
    bdd = BDD(0)
    names: List[str] = []
    variables: List[int] = []
    columns: List[List[int]] = [[] for _ in range(2 * n)]
    for i in range(n):
        for j in range(n):
            name = f"p{i}_{j}"
            var = bdd.add_var(name)
            names.append(name)
            variables.append(var)
            columns[i + j].append(bdd.var(var))

    # Column-compression with symbolic full/half adders.
    result: List[int] = []
    for w in range(2 * n):
        bits = columns[w]
        while len(bits) > 1:
            if len(bits) >= 3:
                a, b, c = bits.pop(), bits.pop(), bits.pop()
                s = bdd.apply_xor(bdd.apply_xor(a, b), c)
                carry = bdd.apply_or(
                    bdd.apply_and(a, b),
                    bdd.apply_and(c, bdd.apply_or(a, b)))
            else:
                a, b = bits.pop(), bits.pop()
                s = bdd.apply_xor(a, b)
                carry = bdd.apply_and(a, b)
            bits.append(s)
            if w + 1 < 2 * n:
                columns[w + 1].append(carry)
        result.append(bits[0] if bits else BDD.FALSE)

    outputs = [ISF.complete(r) for r in result]
    output_names = [f"r{w}" for w in range(2 * n)]
    return MultiFunction(bdd, variables, outputs,
                         input_names=names, output_names=output_names)


def multiplier_function(n: int) -> MultiFunction:
    """The ``n x n`` multiplier ``a * b`` (operand inputs, ``2n`` outputs)."""
    if n < 1:
        raise ValueError("n must be positive")
    bdd = BDD(0)
    a_vars = [bdd.add_var(f"a{i}") for i in range(n)]
    b_vars = [bdd.add_var(f"b{i}") for i in range(n)]
    columns: List[List[int]] = [[] for _ in range(2 * n)]
    for i in range(n):
        for j in range(n):
            columns[i + j].append(
                bdd.apply_and(bdd.var(a_vars[i]), bdd.var(b_vars[j])))
    result: List[int] = []
    for w in range(2 * n):
        bits = columns[w]
        while len(bits) > 1:
            if len(bits) >= 3:
                a, b, c = bits.pop(), bits.pop(), bits.pop()
                s = bdd.apply_xor(bdd.apply_xor(a, b), c)
                carry = bdd.apply_or(
                    bdd.apply_and(a, b),
                    bdd.apply_and(c, bdd.apply_or(a, b)))
            else:
                a, b = bits.pop(), bits.pop()
                s = bdd.apply_xor(a, b)
                carry = bdd.apply_and(a, b)
            bits.append(s)
            if w + 1 < 2 * n:
                columns[w + 1].append(carry)
        result.append(bits[0] if bits else BDD.FALSE)
    outputs = [ISF.complete(r) for r in result]
    return MultiFunction(
        bdd, a_vars + b_vars, outputs,
        input_names=[f"a{i}" for i in range(n)] + [f"b{i}" for i in range(n)],
        output_names=[f"r{w}" for w in range(2 * n)])


def wallace_tree_multiplier(n: int,
                            from_partial_products: bool = False
                            ) -> GateNetwork:
    """Wallace-tree multiplier as a two-input gate network.

    With ``from_partial_products=True`` the inputs are the ``n^2`` bits
    ``p_i_j`` (matching :func:`partial_multiplier_function`); otherwise
    the operands ``a``/``b`` are inputs and the AND matrix is built
    (``n^2`` extra gates).  Reduction uses carry-save full/half adders;
    the final two rows are summed with a ripple stage.
    """
    if n < 2:
        raise ValueError("n must be at least 2")
    net = GateNetwork()
    columns: List[List[Signal]] = [[] for _ in range(2 * n)]
    if from_partial_products:
        for i in range(n):
            for j in range(n):
                columns[i + j].append((net.add_input(f"p{i}_{j}"), False))
    else:
        a = [(net.add_input(f"a{i}"), False) for i in range(n)]
        b = [(net.add_input(f"b{i}"), False) for i in range(n)]
        for i in range(n):
            for j in range(n):
                columns[i + j].append(net.add_gate("and", a[i], b[j]))

    # Wallace reduction to height <= 2.
    while any(len(col) > 2 for col in columns):
        next_columns: List[List[Signal]] = [[] for _ in range(2 * n)]
        for w, col in enumerate(columns):
            idx = 0
            while len(col) - idx >= 3:
                s, c = _full_adder(net, col[idx], col[idx + 1],
                                   col[idx + 2])
                idx += 3
                next_columns[w].append(s)
                if w + 1 < 2 * n:
                    next_columns[w + 1].append(c)
            if len(col) - idx == 2:
                s, c = _half_adder(net, col[idx], col[idx + 1])
                idx += 2
                next_columns[w].append(s)
                if w + 1 < 2 * n:
                    next_columns[w + 1].append(c)
            next_columns[w].extend(col[idx:])
        columns = next_columns

    # Final fast carry-propagate addition of the two remaining rows
    # (conditional-sum stage — this is what keeps Wallace depth
    # logarithmic, matching the paper's ``5 log n - 5`` accounting).
    from repro.arith.adders import conditional_sum_add
    zero: Signal = ("const0", False)
    xs = [columns[w][0] if len(columns[w]) > 0 else zero
          for w in range(2 * n)]
    ys = [columns[w][1] if len(columns[w]) > 1 else zero
          for w in range(2 * n)]
    sums = conditional_sum_add(net, xs, ys)
    for w in range(2 * n):
        net.set_output(f"r{w}", sums[w])
    return net
