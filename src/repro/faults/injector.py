"""Deterministic, seeded fault injection for chaos testing.

The runtime and engine expose named *fault sites* — chokepoints where a
production deployment actually fails (worker startup, mid-decomposition,
cache I/O, journal appends, kernel dispatch, the BDD core).  A site is a
no-op until *armed* through the ``REPRO_FAULTS`` environment variable
(or the CLI's ``--inject``)::

    REPRO_FAULTS="worker.mid_decomp:raise:1:1"      # raise on 1st arrival
    REPRO_FAULTS="cache.write:corrupt:0.5"          # corrupt ~half the writes
    REPRO_FAULTS="bdd.ite:crash:1:100,cache.read:raise:0.1"

Spec grammar (comma- or semicolon-separated)::

    site:kind:prob[:nth]

* ``site`` — one of :data:`SITES` (see the catalog in ``docs/RUNTIME.md``);
* ``kind`` — one of :data:`KINDS`:

  - ``crash``   — ``os._exit(CRASH_EXIT_CODE)``, like a SIGKILL/OOM kill;
  - ``hang``    — sleep ``$REPRO_FAULTS_HANG_S`` (default 3600) seconds;
  - ``oom``     — allocate until ``MemoryError`` (allocation is capped at
    ``$REPRO_FAULTS_OOM_MB``, default 256, then a ``MemoryError`` is
    raised directly — the *effect* of memory exhaustion without taking
    the host down);
  - ``corrupt`` — flip one deterministic bit of the site's payload
    (``bytes``); payload-less sites pass through unchanged;
  - ``raise``   — raise :class:`FaultInjected`;

* ``prob`` — firing probability per arrival in ``[0, 1]``, drawn from a
  per-spec ``random.Random`` seeded by ``$REPRO_FAULTS_SEED`` (default
  0), the site, the kind and the spec position — so a given spec string
  + seed reproduces the exact same fault schedule;
* ``nth`` — when given, fire on exactly the ``nth`` arrival at the site
  (1-based) and never again; ``prob`` is ignored.

Zero overhead when unarmed: :func:`hook` returns ``None`` (callers cache
the result and guard with an ``is not None`` test — this is what the hot
``bdd.ite`` path does), and :func:`fault_point` is a dict lookup plus an
identity comparison.  Arrival counting happens only on armed sites.

:func:`suppressed` masks all sites for a dynamic extent.  The scheduler
wraps its parent-side *fallback* paths (cache probe, degraded rerun) in
it: the degradation path is the guaranteed-correct path of the failure
contract, so faults never target it — a chaos run can degrade results
but can never crash the batch parent through its own recovery code.
"""

from __future__ import annotations

import os
import random
import time
import zlib
from dataclasses import dataclass, field
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional

#: The fault-site catalog (see docs/RUNTIME.md for who calls what).
SITES = (
    "worker.start",
    "worker.mid_decomp",
    "cache.write",
    "cache.read",
    "journal.append",
    "kernel.dispatch",
    "bdd.ite",
    # Service-tier sites (repro serve): request ingress, reply egress
    # and the daemon->pool handoff.  See docs/SERVICE.md for the
    # containment matrix.
    "server.accept",
    "server.reply",
    "server.dispatch",
    # Distributed-tier sites (repro dist): remote cache client frames,
    # node-side shard RPC framing, and whole-node death on job receipt.
    # See the "Distributed batch" failure ladder in docs/RUNTIME.md.
    "cache.fetch",
    "shard.rpc",
    "node.loss",
    # Crash-safe distributed sites: coordinator-side journal appends
    # (the crash kind is the SIGKILL-the-coordinator scenario --resume
    # exists for), and the node-side join/re-registration handshakes of
    # dynamic membership.
    "coord.journal",
    "node.join",
    "node.reconnect",
)

#: The fault kinds every site understands.
KINDS = ("crash", "hang", "oom", "corrupt", "raise")

#: Environment variable holding the armed specs.
ENV_VAR = "REPRO_FAULTS"
#: Seed for the per-spec probability streams (default 0).
SEED_ENV = "REPRO_FAULTS_SEED"
#: Sleep duration of the ``hang`` kind in seconds (default 3600).
HANG_ENV = "REPRO_FAULTS_HANG_S"
#: Allocation cap of the ``oom`` kind in MB (default 256).
OOM_ENV = "REPRO_FAULTS_OOM_MB"

#: Exit code of the ``crash`` kind (distinct from the legacy test-hook
#: exit 3 so logs show which path killed the worker).
CRASH_EXIT_CODE = 23


class FaultInjected(RuntimeError):
    """Raised by the ``raise`` kind; carries the site name."""

    def __init__(self, site: str) -> None:
        super().__init__(f"injected fault at site {site!r} "
                         f"(REPRO_FAULTS armed)")
        self.site = site


class FaultSpecError(ValueError):
    """A malformed ``REPRO_FAULTS`` / ``--inject`` spec."""


@dataclass
class FaultSpec:
    """One parsed ``site:kind:prob[:nth]`` clause."""

    site: str
    kind: str
    prob: float
    nth: Optional[int] = None
    #: Per-spec deterministic probability stream.
    rng: random.Random = field(default_factory=random.Random, repr=False)


def parse_fault_specs(text: str, seed: int = 0) -> List[FaultSpec]:
    """Parse a spec string into :class:`FaultSpec` entries.

    Raises :class:`FaultSpecError` on unknown sites/kinds or malformed
    numbers — arming a typo silently would defeat the chaos tests.
    """
    specs: List[FaultSpec] = []
    for index, clause in enumerate(text.replace(";", ",").split(",")):
        clause = clause.strip()
        if not clause:
            continue
        parts = clause.split(":")
        if len(parts) not in (3, 4):
            raise FaultSpecError(
                f"malformed fault spec {clause!r} "
                f"(use site:kind:prob[:nth])")
        site, kind, prob_text = parts[0], parts[1], parts[2]
        if site not in SITES:
            raise FaultSpecError(
                f"unknown fault site {site!r} (known: {', '.join(SITES)})")
        if kind not in KINDS:
            raise FaultSpecError(
                f"unknown fault kind {kind!r} (known: {', '.join(KINDS)})")
        try:
            prob = float(prob_text)
        except ValueError:
            raise FaultSpecError(
                f"malformed probability {prob_text!r} in {clause!r}")
        if not 0.0 <= prob <= 1.0:
            raise FaultSpecError(
                f"probability {prob} out of [0, 1] in {clause!r}")
        nth = None
        if len(parts) == 4:
            try:
                nth = int(parts[3])
            except ValueError:
                raise FaultSpecError(
                    f"malformed nth {parts[3]!r} in {clause!r}")
            if nth < 1:
                raise FaultSpecError(f"nth must be >= 1 in {clause!r}")
        # Each spec gets its own stream so adding a clause never shifts
        # another clause's schedule.
        stream_seed = zlib.crc32(
            f"{seed}:{index}:{site}:{kind}".encode())
        specs.append(FaultSpec(site=site, kind=kind, prob=prob, nth=nth,
                               rng=random.Random(stream_seed)))
    return specs


class FaultPlan:
    """The armed specs plus their deterministic arrival bookkeeping."""

    def __init__(self, specs: List[FaultSpec]) -> None:
        self.by_site: Dict[str, List[FaultSpec]] = {}
        for spec in specs:
            self.by_site.setdefault(spec.site, []).append(spec)
        #: Arrivals per armed site (advances only for armed sites).
        self.arrivals: Dict[str, int] = {}
        #: Fires per ``site:kind``.
        self.fired: Dict[str, int] = {}

    def fire(self, site: str, payload: Any = None) -> Any:
        specs = self.by_site.get(site)
        if not specs or _SUPPRESS[0]:
            return payload
        n = self.arrivals.get(site, 0) + 1
        self.arrivals[site] = n
        for spec in specs:
            if spec.nth is not None:
                if n != spec.nth:
                    continue
            elif spec.rng.random() >= spec.prob:
                continue
            self.fired[f"{site}:{spec.kind}"] = \
                self.fired.get(f"{site}:{spec.kind}", 0) + 1
            payload = perform(spec.kind, site=site, payload=payload,
                              rng=spec.rng)
        return payload


# ---------------------------------------------------------------------
# Fault actions (shared with the legacy !hang/!crash manifest hooks)
# ---------------------------------------------------------------------

def perform(kind: str, site: str = "manual", payload: Any = None,
            seconds: Optional[float] = None,
            rng: Optional[random.Random] = None) -> Any:
    """Execute one fault action directly (also the ``!hang``/``!crash``
    manifest-hook backend — those hooks are thin aliases over this)."""
    if kind == "crash":
        os._exit(CRASH_EXIT_CODE)
    if kind == "hang":
        if seconds is None:
            seconds = float(os.environ.get(HANG_ENV, "") or 3600.0)
        time.sleep(seconds)
        return payload
    if kind == "oom":
        _allocate_until_oom()
        return payload  # pragma: no cover - _allocate_until_oom raises
    if kind == "corrupt":
        return _corrupt(payload, rng or random.Random(0))
    if kind == "raise":
        raise FaultInjected(site)
    raise FaultSpecError(f"unknown fault kind {kind!r}")


def _allocate_until_oom() -> None:
    """Allocate until ``MemoryError`` — capped so chaos tests exercise
    the *handling* of memory exhaustion without destabilising the host;
    past the cap the ``MemoryError`` is raised directly."""
    cap_mb = float(os.environ.get(OOM_ENV, "") or 256.0)
    chunk = 16 * 1024 * 1024
    hoard = []
    try:
        while len(hoard) * chunk < cap_mb * 1024 * 1024:
            hoard.append(bytearray(chunk))
    except MemoryError:
        pass
    finally:
        del hoard
    raise MemoryError(
        f"injected oom (allocated up to {cap_mb:.0f} MB cap; "
        f"raise {OOM_ENV} to allocate further)")


def _corrupt(payload: Any, rng: random.Random) -> Any:
    """Flip one deterministic bit of a bytes-like payload."""
    if payload is None:
        return None
    data = bytearray(payload)
    if not data:
        return bytes(data)
    pos = rng.randrange(len(data))
    data[pos] ^= 1 << rng.randrange(8)
    return bytes(data)


# ---------------------------------------------------------------------
# Module state: lazy env parsing, suppression, counters
# ---------------------------------------------------------------------

#: (spec text, seed text) snapshot the current plan was parsed from.
_env_snapshot: Optional[tuple] = ("<never>",)
_plan: Optional[FaultPlan] = None
#: Suppression depth (list so closures share the cell).
_SUPPRESS = [0]


def _current_plan() -> Optional[FaultPlan]:
    """The plan for the current environment (re-parsed on env change)."""
    global _env_snapshot, _plan
    snapshot = (os.environ.get(ENV_VAR), os.environ.get(SEED_ENV))
    if snapshot != _env_snapshot:
        _env_snapshot = snapshot
        text = snapshot[0]
        if text:
            seed = int(snapshot[1] or 0)
            _plan = FaultPlan(parse_fault_specs(text, seed))
        else:
            _plan = None
    return _plan


def armed() -> bool:
    """Is any fault site armed in the current environment?"""
    plan = _current_plan()
    return plan is not None and bool(plan.by_site)


def armed_sites() -> frozenset:
    """The set of sites with at least one armed spec (empty when
    unarmed).  Lets subsystems make *site-granular* policy decisions —
    e.g. the sub-ISF memo stays on under cache-layer chaos (that is the
    scenario being tested) but disables itself when engine-internal
    sites are armed, where skipping work would shift deterministic
    nth-fire schedules."""
    plan = _current_plan()
    if plan is None:
        return frozenset()
    return frozenset(plan.by_site)


def fault_point(site: str, payload: Any = None) -> Any:
    """Pass ``payload`` through the fault site ``site``.

    Unarmed (the production default) this is an env-snapshot comparison
    and a ``None`` test; armed it may crash, hang, raise, exhaust
    memory, or return a corrupted payload.
    """
    plan = _current_plan()
    if plan is None:
        return payload
    return plan.fire(site, payload)


def hook(site: str) -> Optional[Callable[[], None]]:
    """A zero-argument firing callable for ``site``, or ``None`` when the
    site is unarmed — for hot paths that cache the hook at construction
    time and guard with ``is not None`` (e.g. ``BDD.ite``)."""
    plan = _current_plan()
    if plan is None or site not in plan.by_site:
        return None
    return lambda: plan.fire(site)


@contextmanager
def suppressed() -> Iterator[None]:
    """Mask every fault site for the dynamic extent (recovery paths)."""
    _SUPPRESS[0] += 1
    try:
        yield
    finally:
        _SUPPRESS[0] -= 1


def counters() -> Dict[str, int]:
    """``{"site:kind": fires}`` for the current plan (empty when unarmed)."""
    plan = _current_plan()
    return dict(plan.fired) if plan is not None else {}


def reset_in_worker() -> None:
    """Re-arm from the environment with fresh arrival counters.

    Called at worker-process entry so every attempt counts arrivals from
    1 regardless of what the (forked) parent already consumed — this is
    what makes ``nth`` deterministic per attempt.
    """
    global _env_snapshot, _plan
    _env_snapshot = ("<never>",)
    _plan = None
    _current_plan()


def arm(text: str, seed: Optional[int] = None) -> None:
    """Arm ``text`` via the environment (inherited by worker processes).

    Validates eagerly so a typo fails at arm time, not mid-batch.
    """
    parse_fault_specs(text, seed or 0)
    os.environ[ENV_VAR] = text
    if seed is not None:
        os.environ[SEED_ENV] = str(seed)


def disarm() -> None:
    """Remove every armed fault from the environment."""
    os.environ.pop(ENV_VAR, None)
