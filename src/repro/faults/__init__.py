"""Deterministic fault injection for chaos-hardening the runtime.

See :mod:`repro.faults.injector` for the spec grammar
(``site:kind:prob[:nth]`` via ``REPRO_FAULTS`` / ``--inject``), the site
catalog and the containment contract.  The public surface:

* :func:`fault_point` — inline pass-through site (cache/journal/worker
  chokepoints);
* :func:`hook` — cached-callable form for hot paths (``None`` unarmed);
* :func:`suppressed` — mask faults over recovery/fallback code;
* :func:`counters` — fires per ``site:kind`` for the metrics documents;
* :exc:`FaultInjected` — what the ``raise`` kind throws (quarantined by
  the engine, reported by workers).
"""

from repro.faults.injector import (
    CRASH_EXIT_CODE,
    ENV_VAR,
    HANG_ENV,
    KINDS,
    OOM_ENV,
    SEED_ENV,
    SITES,
    FaultInjected,
    FaultPlan,
    FaultSpec,
    FaultSpecError,
    arm,
    armed,
    armed_sites,
    counters,
    disarm,
    fault_point,
    hook,
    parse_fault_specs,
    perform,
    reset_in_worker,
    suppressed,
)

__all__ = [
    "CRASH_EXIT_CODE",
    "ENV_VAR",
    "HANG_ENV",
    "KINDS",
    "OOM_ENV",
    "SEED_ENV",
    "SITES",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "FaultSpecError",
    "arm",
    "armed",
    "armed_sites",
    "counters",
    "disarm",
    "fault_point",
    "hook",
    "parse_fault_specs",
    "perform",
    "reset_in_worker",
    "suppressed",
]
