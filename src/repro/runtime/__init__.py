"""Batch-execution runtime: parallel scheduling with a persistent cache.

Three pillars (see ``docs/RUNTIME.md`` for the design discussion):

* :mod:`repro.runtime.scheduler` — a :class:`BatchScheduler` that fans
  decomposition jobs out over worker processes with per-job wall-clock
  timeouts, bounded crash retries and graceful degradation to the
  trivial Shannon/MUX mapping;
* :mod:`repro.runtime.cache` — a content-addressed on-disk
  :class:`ResultCache` (``canonical_key`` + flow + engine config + code
  version) with an in-memory LRU front, behind ``repro cache
  {stats,clear}``;
* :mod:`repro.runtime.jobspec` — the JSON-able job wire format, manifest
  parsing and the worker entry point (with its heartbeat thread);
* :mod:`repro.runtime.journal` — the crash-safe write-ahead
  :class:`BatchJournal` behind ``repro batch --journal/--resume``;
* :mod:`repro.runtime.pool` — the shared worker-process primitives
  (pipe drain/heartbeats, process hygiene, :class:`ProgressEvent`
  callbacks) plus the persistent :class:`WorkerPool` with warm
  per-worker function memos that ``repro serve`` multiplexes onto.

Quickstart::

    from repro.runtime import BatchScheduler, ResultCache, make_job
    jobs = [make_job({"kind": "benchmark", "name": n})
            for n in ("rd53", "rd73", "rd84")]
    results = BatchScheduler(workers=4, timeout=120,
                             cache=ResultCache("/tmp/repro-cache")).run(jobs)
"""

from repro.runtime.cache import (
    CACHE_CODE_VERSION,
    CACHE_FORMAT_VERSION,
    ResultCache,
    cache_key,
    default_cache_dir,
)
from repro.runtime.jobspec import (
    build_function,
    execute_job,
    make_job,
    parse_manifest,
    parse_manifest_entry,
    source_from_name,
    source_label,
)
from repro.runtime.pool import (
    JobHung,
    JobTimeout,
    PoolClosed,
    PoolError,
    ProgressEvent,
    WorkerCrash,
    WorkerPool,
    resolve_workers,
)
from repro.runtime.journal import (
    BatchJournal,
    JournalError,
    journal_binding,
    load_journal,
)
from repro.runtime.scheduler import (
    BatchScheduler,
    JobResult,
    degraded_record,
    summarize,
    summarize_rows,
)

__all__ = [
    "JobHung",
    "JobTimeout",
    "PoolClosed",
    "PoolError",
    "ProgressEvent",
    "WorkerCrash",
    "WorkerPool",
    "resolve_workers",
    "BatchJournal",
    "JournalError",
    "journal_binding",
    "load_journal",
    "BatchScheduler",
    "JobResult",
    "ResultCache",
    "CACHE_CODE_VERSION",
    "CACHE_FORMAT_VERSION",
    "cache_key",
    "default_cache_dir",
    "build_function",
    "execute_job",
    "make_job",
    "parse_manifest",
    "parse_manifest_entry",
    "source_from_name",
    "source_label",
    "degraded_record",
    "summarize",
    "summarize_rows",
]
