"""Worker-pool primitives shared by the batch scheduler and `repro serve`.

This module is the extraction layer between the two execution tiers:

* the **batch tier** (:class:`~repro.runtime.scheduler.BatchScheduler`)
  keeps its one-process-per-attempt model — a crash or timeout is
  contained by construction — and consumes the low-level pieces here:
  pipe draining with heartbeat bookkeeping (:func:`drain_messages`),
  process hygiene (:func:`kill_process` / :func:`reap_process`), worker
  count clamping (:func:`resolve_workers`) and the
  :class:`ProgressEvent` callback API;
* the **service tier** (:mod:`repro.serve`) needs warm workers — paying
  interpreter startup and module import per request would dominate
  small decompositions — so :class:`WorkerPool` keeps N long-lived
  worker processes fed over duplex pipes, one job at a time each, with
  the same heartbeat/hang/timeout story as the batch tier.

Persistent workers stay **bit-identical** to the batch tier because the
unit of determinism is the job, not the process: every job rebuilds (or
reuses a memoised copy of) its :class:`MultiFunction` and runs a fresh
engine whose per-run memos are cleared on reset.  What persists across
jobs is the *warm* state that is semantically inert but expensive to
recreate: the imported modules, and a small per-worker LRU of built
functions whose BDD managers (unique/computed tables) stay hot for
repeat sources.  Fault-arrival counters are re-armed per job
(:func:`repro.faults.reset_in_worker`) so ``nth`` chaos schedules stay
deterministic per attempt, exactly as with one-shot workers.

Failure containment mirrors the scheduler: a worker that crashes,
times out or goes heartbeat-silent is killed and reaped *inside the
pool*; the submitter's future fails with a typed :class:`PoolError`
(:class:`WorkerCrash` / :class:`JobTimeout` / :class:`JobHung`) and the
pool respawns capacity on demand.  No worker failure can escape as an
unhandled exception in the dispatcher thread, and ``shutdown`` leaves
no live worker behind.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import socket
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from multiprocessing.connection import wait as connection_wait
from typing import Any, Callable, Dict, List, Optional

from repro import faults

#: Hard floor for poll intervals (seconds) — shared with the scheduler.
POLL_S = 0.05

#: Default cap applied to auto-detected worker counts.
AUTO_WORKER_CAP = 8

#: Default per-worker warm-function LRU depth (env-overridable).
WARM_LIMIT_ENV = "REPRO_SERVE_WARM_FUNCS"


def resolve_workers(requested: Optional[int],
                    cap: int = AUTO_WORKER_CAP) -> "tuple[int, Optional[str]]":
    """Clamp a requested worker count to something runnable.

    ``None`` means "auto" (CPU count capped at ``cap``); zero and
    negative values also clamp to auto but return a human-readable note
    so CLIs can tell the user what happened instead of misbehaving.
    """
    auto = max(1, min(os.cpu_count() or 1, cap))
    if requested is None:
        return auto, None
    if requested <= 0:
        return auto, (f"worker count {requested} clamped to "
                      f"auto-detected {auto} (CPU count, capped at {cap})")
    return requested, None


# ---------------------------------------------------------------------
# Progress events (the callback API shared by batch and serve)
# ---------------------------------------------------------------------

@dataclass
class ProgressEvent:
    """One observable step in a job's life, for streaming consumers.

    Kinds: ``dispatch`` (a worker process/slot starts the attempt),
    ``beat`` (worker liveness, with the engine phase piggybacked),
    ``retry`` (a crashed attempt is being requeued), ``result`` (the
    job settled; ``status`` carries ok/degraded/failed).
    """

    kind: str
    job_id: str
    index: int = -1
    attempt: int = 1
    phase: Optional[str] = None
    beats: int = 0
    status: Optional[str] = None
    detail: Optional[str] = None

    def as_dict(self) -> Dict[str, Any]:
        data = {"event": self.kind, "job_id": self.job_id,
                "attempt": self.attempt}
        if self.index >= 0:
            data["index"] = self.index
        if self.phase is not None:
            data["phase"] = self.phase
        if self.beats:
            data["beats"] = self.beats
        if self.status is not None:
            data["status"] = self.status
        if self.detail is not None:
            data["detail"] = self.detail
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ProgressEvent":
        """Inverse of :meth:`as_dict` — how the dist tier rehydrates
        events relayed over the wire into the same callback API."""
        return cls(kind=str(data.get("event", "?")),
                   job_id=str(data.get("job_id", "?")),
                   index=int(data.get("index", -1)),
                   attempt=int(data.get("attempt", 1)),
                   phase=data.get("phase"),
                   beats=int(data.get("beats", 0)),
                   status=data.get("status"),
                   detail=data.get("detail"))


#: Signature of a progress-event sink.
EventSink = Callable[[ProgressEvent], None]


def emit_event(sink: Optional[EventSink], event: ProgressEvent) -> None:
    """Deliver ``event`` to ``sink``; a sink that raises is dropped for
    the event (observability must never break execution)."""
    if sink is None:
        return
    try:
        sink(event)
    except Exception:  # noqa: BLE001 — observer errors are not ours
        pass


# ---------------------------------------------------------------------
# Shared pipe/process plumbing
# ---------------------------------------------------------------------

def drain_messages(entry: Any) -> int:
    """Consume everything buffered on ``entry.conn``.

    Heartbeat messages update the liveness bookkeeping
    (``last_beat``/``beats``/``phase`` attributes); the first
    non-heartbeat message sticks to ``entry.payload``.  Returns the
    number of new beats seen (callers turn those into ``beat``
    progress events).  Used by both the batch scheduler's ``_drain``
    and the persistent pool's dispatcher.
    """
    new_beats = 0
    try:
        while entry.payload is None and entry.conn.poll():
            message = entry.conn.recv()
            if isinstance(message, dict) and message.get("beat"):
                entry.last_beat = time.monotonic()
                entry.beats += 1
                new_beats += 1
                entry.phase = message.get("phase") or entry.phase
            else:
                entry.payload = message
    except (EOFError, OSError):
        pass  # process died mid-send: handled as a crash by the caller
    return new_beats


def reap_process(process: multiprocessing.Process, conn: Any,
                 timeout: float = 1.0) -> None:
    """Join a finished worker; escalate to a kill if it lingers."""
    process.join(timeout=timeout)
    if process.is_alive():
        kill_process(process, conn, timeout)
        return
    try:
        conn.close()
    except OSError:
        pass


def kill_process(process: multiprocessing.Process, conn: Any,
                 timeout: float = 1.0) -> None:
    """Terminate (then kill) a worker and close its pipe end."""
    process.terminate()
    process.join(timeout=timeout)
    if process.is_alive():
        process.kill()
        process.join(timeout=timeout)
    try:
        conn.close()
    except OSError:
        pass


# ---------------------------------------------------------------------
# Typed pool failures
# ---------------------------------------------------------------------

class PoolError(RuntimeError):
    """Base class for worker-pool job failures."""


class WorkerCrash(PoolError):
    """The worker process died without delivering a payload."""

    def __init__(self, exitcode: Optional[int]) -> None:
        super().__init__(f"worker crashed (exit code {exitcode})")
        self.exitcode = exitcode


class JobTimeout(PoolError):
    """The job exceeded its wall-clock budget and the worker was
    killed."""

    def __init__(self, timeout_s: float) -> None:
        super().__init__(f"timeout after {timeout_s:.1f}s")
        self.timeout_s = timeout_s


class JobHung(PoolError):
    """Heartbeats went silent past the hang grace; the worker was
    killed."""

    def __init__(self, silent_s: float, phase: Optional[str]) -> None:
        detail = f" in phase {phase!r}" if phase else ""
        super().__init__(f"hung (no heartbeat for {silent_s:.1f}s"
                         f"{detail})")
        self.silent_s = silent_s
        self.phase = phase


class PoolClosed(PoolError):
    """Submitted to a pool that is shutting down."""


# ---------------------------------------------------------------------
# Persistent worker side
# ---------------------------------------------------------------------

def default_warm_limit() -> int:
    """``$REPRO_SERVE_WARM_FUNCS`` (clamped to >= 0), default 8."""
    raw = os.environ.get(WARM_LIMIT_ENV, "")
    try:
        return max(0, int(raw)) if raw else 8
    except ValueError:
        return 8


def warm_key(job: Dict[str, Any]) -> Optional[str]:
    """Memo key for a job's built function, or None when reuse is
    unsafe.

    Wire dumps *are* content, so they key directly; descriptor-backed
    sources key on the descriptor except file paths (``pla``/``blif``),
    whose bytes may change on disk between requests.
    """
    wire = job.get("wire")
    if wire:
        blob = json.dumps(wire, sort_keys=True, separators=(",", ":"))
    else:
        source = job.get("source") or {}
        if source.get("kind") in ("pla", "blif"):
            return None
        blob = json.dumps(source, sort_keys=True, separators=(",", ":"),
                          default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


def pool_worker_entry(conn: Any, heartbeat_s: Optional[float] = 1.0,
                      warm_limit: Optional[int] = None) -> None:
    """Long-lived worker loop: receive a job, run it, ship the payload.

    Each job re-arms fault counters (``nth`` determinism per attempt)
    and runs through :func:`repro.runtime.jobspec.execute_job` exactly
    like a one-shot batch worker; what persists is the process (imports)
    and a bounded LRU of built functions whose BDD managers stay warm
    for repeat sources.  A ``{"stop": True}`` message (or a closed pipe)
    ends the loop.
    """
    from repro.runtime import jobspec

    faults.reset_in_worker()
    if warm_limit is None:
        warm_limit = default_warm_limit()
    warm: "OrderedDict[str, Any]" = OrderedDict()
    send_lock = threading.Lock()

    def build(job: Dict[str, Any]) -> Any:
        key = warm_key(job) if warm_limit > 0 else None
        if key is not None:
            func = warm.get(key)
            if func is not None:
                warm.move_to_end(key)
                build.warm_hit = True  # type: ignore[attr-defined]
                return func
        if job.get("wire"):
            from repro.boolfunc.spec import MultiFunction
            func = MultiFunction.from_wire(job["wire"])
        else:
            func = jobspec.build_function(job["source"])
        if key is not None:
            warm[key] = func
            while len(warm) > warm_limit:
                warm.popitem(last=False)
        return func

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if not isinstance(message, dict) or message.get("stop"):
            break
        job = message["job"]
        attempt = int(message.get("attempt", 1))
        seq = message.get("seq")
        faults.reset_in_worker()
        build.warm_hit = False  # type: ignore[attr-defined]
        stop = None
        if heartbeat_s is not None and heartbeat_s > 0:
            stop = jobspec.start_beat_thread(conn, send_lock, heartbeat_s)
        try:
            payload = jobspec.execute_job(job, attempt, build=build)
        except BaseException as exc:  # noqa: BLE001 — report, don't die
            payload = {"status": "failed",
                       "error": f"{type(exc).__name__}: {exc}"}
        if stop is not None:
            stop.set()
        envelope = {"seq": seq, "payload": payload,
                    "warm": bool(getattr(build, "warm_hit", False))}
        try:
            with send_lock:
                conn.send(envelope)
        except (BrokenPipeError, OSError):
            return
    try:
        conn.close()
    except OSError:
        pass


# ---------------------------------------------------------------------
# Persistent pool (parent side)
# ---------------------------------------------------------------------

@dataclass
class _Ticket:
    """One submitted job waiting for (or holding) a worker."""

    job: Dict[str, Any]
    future: Future
    timeout: Optional[float]
    on_event: Optional[EventSink] = None
    seq: int = 0


@dataclass
class _Worker:
    """One persistent worker process and its in-flight bookkeeping."""

    process: multiprocessing.Process
    conn: Any
    ticket: Optional[_Ticket] = None
    started_at: float = 0.0
    deadline: Optional[float] = None
    last_beat: float = 0.0
    beats: int = 0
    phase: Optional[str] = None
    payload: Any = None

    @property
    def busy(self) -> bool:
        return self.ticket is not None


class WorkerPool:
    """N long-lived worker processes multiplexing jobs from a queue.

    ``submit`` returns a :class:`concurrent.futures.Future` resolving to
    the worker's payload dict (``{"status": ..., "result": ...}``) or
    failing with a typed :class:`PoolError`.  A dispatcher thread owns
    all worker state; submitters only touch the queue under a lock, so
    ``submit`` is safe from any thread (including an asyncio loop via
    ``run_in_executor``-free call — it never blocks).

    Parameters mirror the batch scheduler where they overlap:
    ``heartbeat_s`` / ``hang_grace_s`` drive hang detection,
    ``default_timeout`` bounds jobs that do not carry their own.
    ``warm_limit`` is the per-worker built-function LRU depth
    (0 disables warm reuse).
    """

    def __init__(self, workers: Optional[int] = None, *,
                 heartbeat_s: Optional[float] = 1.0,
                 hang_grace_s: Optional[float] = None,
                 default_timeout: Optional[float] = None,
                 warm_limit: Optional[int] = None,
                 mp_context: Optional[str] = None) -> None:
        self.workers, _ = resolve_workers(workers)
        self.heartbeat_s = heartbeat_s
        self.hang_grace_s = hang_grace_s
        self.default_timeout = default_timeout
        self.warm_limit = (default_warm_limit() if warm_limit is None
                           else max(0, warm_limit))
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(mp_context)
        self._lock = threading.Lock()
        self._queue: "deque[_Ticket]" = deque()
        self._pool: List[_Worker] = []
        self._seq = 0
        self._closed = False
        self._drain = True
        self.dispatched = 0
        self.completed = 0
        self.crashes = 0
        self.timeouts = 0
        self.hangs = 0
        self.respawns = 0
        self.warm_hits = 0
        #: Sub-ISF memo counters summed over worker payloads (feeds the
        #: service tier's ``GET /metrics``).
        self.submemo_totals: Dict[str, int] = {}
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._thread = threading.Thread(target=self._loop,
                                        name="repro-pool", daemon=True)
        self._thread.start()

    # -- public API -----------------------------------------------------

    def submit(self, job: Dict[str, Any], *,
               timeout: Optional[float] = None,
               on_event: Optional[EventSink] = None) -> Future:
        """Queue ``job`` for the next idle worker; never blocks."""
        future: Future = Future()
        with self._lock:
            if self._closed:
                raise PoolClosed("pool is shut down")
            ticket = _Ticket(job=job, future=future,
                             timeout=(self.default_timeout
                                      if timeout is None else timeout),
                             on_event=on_event)
            self._queue.append(ticket)
        self._wake()
        return future

    def shutdown(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the pool.

        ``drain=True`` lets in-flight jobs finish (queued ones still
        run) before workers are stopped; ``drain=False`` kills workers
        immediately and fails pending futures with :class:`PoolClosed`.
        Idempotent.
        """
        with self._lock:
            self._closed = True
            self._drain = drain
        self._wake()
        self._thread.join(timeout=timeout)
        # Belt and braces: whatever state the dispatcher died in, no
        # worker may outlive the pool.
        for worker in list(self._pool):
            kill_process(worker.process, worker.conn)

    def stats(self) -> Dict[str, Any]:
        """Point-in-time counters for the metrics endpoint."""
        with self._lock:
            busy = sum(1 for w in self._pool if w.busy)
            pids = [w.process.pid for w in self._pool
                    if w.process.pid is not None]
            queued = len(self._queue)
        return {
            "workers": self.workers,
            "alive": len(pids),
            "busy": busy,
            "queued": queued,
            "dispatched": self.dispatched,
            "completed": self.completed,
            "crashes": self.crashes,
            "timeouts": self.timeouts,
            "hangs": self.hangs,
            "respawns": self.respawns,
            "warm_hits": self.warm_hits,
            "warm_limit": self.warm_limit,
            "submemo": dict(self.submemo_totals),
            "pids": pids,
        }

    # -- dispatcher internals -------------------------------------------

    def _wake(self) -> None:
        try:
            self._wake_w.send(b"\x00")
        except OSError:
            pass

    def _spawn(self) -> Optional[_Worker]:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=pool_worker_entry,
            args=(child_conn, self.heartbeat_s, self.warm_limit),
            daemon=True)
        try:
            process.start()
        except OSError:
            return None
        child_conn.close()
        return _Worker(process=process, conn=parent_conn)

    def _assign(self) -> None:
        """Hand queued tickets to idle (live) workers, spawning up to
        the configured width."""
        while True:
            with self._lock:
                if not self._queue:
                    return
                idle = next((w for w in self._pool if not w.busy), None)
                can_spawn = idle is None and len(self._pool) < self.workers
                if idle is None and not can_spawn:
                    return
                ticket = self._queue.popleft()
            if idle is not None and not idle.process.is_alive():
                # An idle worker that died (external SIGKILL, OOM
                # killer) is silently replaced — idleness means no job
                # was lost, only warmth.
                with self._lock:
                    self._pool.remove(idle)
                reap_process(idle.process, idle.conn)
                self.respawns += 1
                idle = None
            if idle is None:
                idle = self._spawn()
                if idle is None:
                    # Could not spawn (fd/process exhaustion): fail the
                    # ticket rather than wedging the queue.
                    ticket.future.set_exception(
                        WorkerCrash(None))
                    continue
                with self._lock:
                    self._pool.append(idle)
            self._seq += 1
            ticket.seq = self._seq
            now = time.monotonic()
            idle.ticket = ticket
            idle.started_at = now
            idle.last_beat = now
            idle.beats = 0
            idle.phase = None
            idle.payload = None
            idle.deadline = (now + ticket.timeout
                             if ticket.timeout is not None else None)
            try:
                idle.conn.send({"job": ticket.job, "attempt":
                                ticket.job.get("attempt", 1),
                                "seq": ticket.seq})
            except (BrokenPipeError, OSError):
                # Worker died between jobs: replace it and retry the
                # ticket on a fresh one.
                with self._lock:
                    self._pool.remove(idle)
                    self._queue.appendleft(ticket)
                kill_process(idle.process, idle.conn)
                self.respawns += 1
                continue
            self.dispatched += 1
            emit_event(ticket.on_event, ProgressEvent(
                kind="dispatch", job_id=ticket.job.get("job_id", "?"),
                attempt=ticket.job.get("attempt", 1)))

    def _fail(self, worker: _Worker, error: PoolError,
              kill: bool) -> None:
        """Settle a broken worker: fail its ticket, drop the process."""
        ticket = worker.ticket
        worker.ticket = None
        with self._lock:
            if worker in self._pool:
                self._pool.remove(worker)
        if kill:
            kill_process(worker.process, worker.conn)
        else:
            reap_process(worker.process, worker.conn)
        self.respawns += 1
        if ticket is not None and not ticket.future.cancelled():
            ticket.future.set_exception(error)

    def _settle(self, worker: _Worker) -> None:
        """Resolve one busy worker: payload, death, timeout or hang."""
        ticket = worker.ticket
        if ticket is None:
            return
        now = time.monotonic()
        if worker.payload is not None:
            envelope = worker.payload
            worker.payload = None
            worker.ticket = None
            self.completed += 1
            if isinstance(envelope, dict) and envelope.get("warm"):
                self.warm_hits += 1
            payload = (envelope.get("payload")
                       if isinstance(envelope, dict) else envelope)
            if isinstance(payload, dict):
                for name, count in (payload.get("submemo")
                                    or {}).items():
                    self.submemo_totals[name] = \
                        self.submemo_totals.get(name, 0) + int(count)
            if not ticket.future.cancelled():
                ticket.future.set_result(payload)
            return
        if not worker.process.is_alive():
            # Drain once more — a fast exit can leave the payload
            # buffered in the pipe.
            drain_messages(worker)
            if worker.payload is not None:
                self._settle(worker)
                return
            self.crashes += 1
            self._fail(worker, WorkerCrash(worker.process.exitcode),
                       kill=False)
            return
        if worker.deadline is not None and now > worker.deadline:
            self.timeouts += 1
            self._fail(worker, JobTimeout(ticket.timeout or 0.0),
                       kill=True)
            return
        if (self.hang_grace_s is not None and self.heartbeat_s
                and now - worker.last_beat > self.hang_grace_s):
            self.hangs += 1
            self._fail(worker,
                       JobHung(now - worker.last_beat, worker.phase),
                       kill=True)

    def _loop(self) -> None:
        while True:
            self._assign()
            with self._lock:
                closed = self._closed
                drain = self._drain
                busy = [w for w in self._pool if w.busy]
                queued = len(self._queue)
            if closed and not drain:
                self._abort()
                return
            if closed and not busy and not queued:
                self._stop_workers()
                return
            budget = POLL_S * 4
            now = time.monotonic()
            deadlines = [w.deadline - now for w in busy
                         if w.deadline is not None]
            if self.hang_grace_s is not None and busy:
                deadlines.append(min(w.last_beat for w in busy)
                                 + self.hang_grace_s - now)
            if deadlines:
                budget = min(budget, max(POLL_S, min(deadlines)))
            try:
                ready = connection_wait(
                    [w.conn for w in busy] + [self._wake_r],
                    timeout=max(POLL_S, budget))
            except OSError:
                ready = []
            if self._wake_r in ready:
                try:
                    while self._wake_r.recv(4096):
                        pass
                except (BlockingIOError, OSError):
                    pass
            for worker in busy:
                if worker.conn in ready and worker.payload is None:
                    new_beats = drain_messages(worker)
                    ticket = worker.ticket
                    if new_beats and ticket is not None:
                        emit_event(ticket.on_event, ProgressEvent(
                            kind="beat",
                            job_id=ticket.job.get("job_id", "?"),
                            attempt=ticket.job.get("attempt", 1),
                            phase=worker.phase, beats=worker.beats))
                self._settle(worker)

    def _abort(self) -> None:
        """Immediate shutdown: kill everyone, fail everything."""
        with self._lock:
            pool = list(self._pool)
            self._pool.clear()
            queue = list(self._queue)
            self._queue.clear()
        for worker in pool:
            ticket = worker.ticket
            worker.ticket = None
            kill_process(worker.process, worker.conn)
            if ticket is not None and not ticket.future.cancelled():
                ticket.future.set_exception(PoolClosed("pool aborted"))
        for ticket in queue:
            if not ticket.future.cancelled():
                ticket.future.set_exception(PoolClosed("pool aborted"))

    def _stop_workers(self) -> None:
        """Graceful stop: ask idle workers to exit, then reap."""
        with self._lock:
            pool = list(self._pool)
            self._pool.clear()
        for worker in pool:
            try:
                worker.conn.send({"stop": True})
            except (BrokenPipeError, OSError):
                pass
        for worker in pool:
            reap_process(worker.process, worker.conn)
