"""Parallel batch scheduler with timeouts, retries and degradation.

The scheduler runs decomposition jobs (see :mod:`repro.runtime.jobspec`)
across a pool of worker *processes* — one process per attempt, so a
wall-clock timeout or a crashed worker is contained by construction:
the parent kills/reaps the process and the batch keeps moving.

Failure policy (the "graceful degradation" contract):

* **timeout** — the worker is killed and the job immediately *degrades*:
  the parent re-runs it through the trivial Shannon/MUX mapping path
  (``DecompositionEngine`` with a zero time budget), which is bounded by
  the BDD size and deterministic.  No retry — a search that timed out
  once will time out again.
* **worker crash** (process died without a result) — retried with a
  linear backoff up to ``retries`` times, then degraded.  Crashes are
  the transient class (OOM kills, signals), so retrying is worth it.
* **worker exception** (job raised) — deterministic, so no retry: the
  job degrades when the function can still be built, otherwise it is
  marked ``failed`` (e.g. an unreadable PLA file).

Results come back in submission order regardless of completion order,
and each carries its own observability record (queue wait, exec time,
cache hit, retry count) for the batch metrics document.

With a :class:`~repro.runtime.cache.ResultCache` attached, the parent
builds each function up front, keys it by content
(:meth:`MultiFunction.canonical_key` + flow + engine config + code
version) and skips dispatch entirely on a hit; on a miss the built
function ships to the worker in wire form so it is not rebuilt.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from multiprocessing.connection import wait as connection_wait
from typing import Any, Callable, Dict, List, Optional

from repro.runtime import jobspec
from repro.runtime.cache import ResultCache, cache_key

#: Hard floor for the scheduler's poll interval (seconds).
_POLL_S = 0.05


@dataclass
class JobResult:
    """Outcome of one batch job, with its observability record."""

    job_id: str
    source: str
    flow: str
    #: "ok" | "degraded" | "failed".
    status: str
    #: The flow's result record (None only when status == "failed").
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    cache_hit: bool = False
    degraded: bool = False
    #: Seconds between batch start and first dispatch of this job.
    queue_wait_s: float = 0.0
    #: Wall-clock seconds of the attempt that produced the outcome.
    exec_s: float = 0.0
    #: Crash retries consumed (0 on a clean first attempt).
    retries: int = 0

    def as_dict(self, include_blif: bool = False) -> Dict[str, Any]:
        """JSON-able row for the batch JSONL output.

        BLIF text is dropped by default to keep rows one-line small;
        the full record stays on :attr:`result`.
        """
        record = self.result
        if record is not None and not include_blif:
            record = {k: v for k, v in record.items() if k != "blif"}
            for driver in ("mulopII", "mulop_dc"):
                if isinstance(record.get(driver), dict):
                    record[driver] = {k: v
                                      for k, v in record[driver].items()
                                      if k != "blif"}
        return {
            "job_id": self.job_id,
            "source": self.source,
            "flow": self.flow,
            "status": self.status,
            "cache_hit": self.cache_hit,
            "degraded": self.degraded,
            "queue_wait_s": round(self.queue_wait_s, 6),
            "exec_s": round(self.exec_s, 6),
            "retries": self.retries,
            "result": record,
            "error": self.error,
        }


def summarize(results: List[JobResult]) -> Dict[str, Any]:
    """Batch totals for the metrics document and the CLI summary line."""
    return {
        "jobs": len(results),
        "ok": sum(r.status == "ok" for r in results),
        "degraded": sum(r.status == "degraded" for r in results),
        "failed": sum(r.status == "failed" for r in results),
        "cache_hits": sum(r.cache_hit for r in results),
        "retries": sum(r.retries for r in results),
        "total_exec_s": round(sum(r.exec_s for r in results), 6),
    }


@dataclass
class _Active:
    """Bookkeeping for one in-flight worker process."""

    index: int
    attempt: int
    process: multiprocessing.Process
    conn: Any
    started_at: float
    deadline: Optional[float]
    payload: Optional[Dict[str, Any]] = None
    retries: int = 0
    first_dispatch: float = 0.0
    #: Parent-side build artefacts (cache mode only).
    func: Any = None
    key: Optional[str] = None


@dataclass
class _Pending:
    index: int
    attempt: int = 1
    retries: int = 0
    #: Earliest dispatch time (crash-retry backoff).
    not_before: float = 0.0
    func: Any = None
    key: Optional[str] = None
    first_dispatch: Optional[float] = field(default=None)


class BatchScheduler:
    """Run many jobs across a worker pool with bounded failure modes.

    Parameters
    ----------
    workers:
        Concurrent worker processes (default: CPU count, capped at 8).
    timeout:
        Per-job wall-clock budget in seconds (None = unbounded).
    retries:
        Crash retries per job before degrading.
    cache:
        Optional :class:`ResultCache`; hits skip dispatch entirely.
    degrade:
        When False, timeouts/crashes mark the job ``failed`` instead of
        falling back to the trivial mapping.
    """

    def __init__(self, workers: Optional[int] = None,
                 timeout: Optional[float] = None, retries: int = 1,
                 cache: Optional[ResultCache] = None,
                 degrade: bool = True,
                 retry_backoff_s: float = 0.25,
                 mp_context: Optional[str] = None) -> None:
        self.workers = max(1, workers if workers is not None
                           else min(os.cpu_count() or 1, 8))
        self.timeout = timeout
        self.retries = max(0, retries)
        self.cache = cache
        self.degrade = degrade
        self.retry_backoff_s = retry_backoff_s
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(mp_context)

    # -- public entry ---------------------------------------------------

    def run(self, jobs: List[Dict[str, Any]],
            on_result: Optional[Callable[[JobResult], None]] = None
            ) -> List[JobResult]:
        """Execute ``jobs``; results are in submission order."""
        started = time.monotonic()
        results: List[Optional[JobResult]] = [None] * len(jobs)
        queue: List[_Pending] = []

        def finish(index: int, res: JobResult) -> None:
            results[index] = res
            if on_result is not None:
                on_result(res)

        for index, job in enumerate(jobs):
            pending = _Pending(index)
            if self.cache is not None:
                hit = self._try_cache(job, pending)
                if hit is not None:
                    finish(index, hit)
                    continue
            queue.append(pending)

        active: List[_Active] = []
        while queue or active:
            now = time.monotonic()
            while len(active) < self.workers:
                slot = next((p for p in queue if p.not_before <= now),
                            None)
                if slot is None:
                    break
                queue.remove(slot)
                active.append(self._dispatch(jobs, slot, started))
            if active:
                self._poll(active)
            elif queue:
                # Everything is in crash-retry backoff; sleep it off.
                time.sleep(max(_POLL_S,
                               min(p.not_before for p in queue) - now))
            for entry in list(active):
                outcome = self._settle(jobs, entry, queue)
                if outcome is not None:
                    active.remove(entry)
                    if isinstance(outcome, JobResult):
                        finish(entry.index, outcome)
        return [r for r in results if r is not None]

    # -- cache ----------------------------------------------------------

    def _try_cache(self, job: Dict[str, Any],
                   pending: _Pending) -> Optional[JobResult]:
        """Cache lookup; on a miss the built function and key stick to
        the pending entry so the hot path never builds twice."""
        try:
            func = jobspec.build_function(job["source"])
        except Exception as exc:  # noqa: BLE001 — bad source: report it
            return JobResult(
                job_id=job["job_id"],
                source=jobspec.source_label(job["source"]),
                flow=job["flow"], status="failed",
                error=f"{type(exc).__name__}: {exc}")
        key = cache_key(func.canonical_key(), job["flow"], job["config"])
        pending.func = func
        pending.key = key
        record = self.cache.get(key)
        if record is None:
            job["wire"] = func.to_wire()
            return None
        return JobResult(
            job_id=job["job_id"],
            source=jobspec.source_label(job["source"]),
            flow=job["flow"], status="ok", result=record,
            cache_hit=True)

    # -- dispatch/poll/settle -------------------------------------------

    def _dispatch(self, jobs: List[Dict[str, Any]], pending: _Pending,
                  batch_started: float) -> _Active:
        now = time.monotonic()
        if pending.first_dispatch is None:
            pending.first_dispatch = now - batch_started
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=jobspec.worker_entry,
            args=(child_conn, jobs[pending.index], pending.attempt),
            daemon=True)
        process.start()
        child_conn.close()
        deadline = now + self.timeout if self.timeout is not None else None
        return _Active(index=pending.index, attempt=pending.attempt,
                       process=process, conn=parent_conn,
                       started_at=now, deadline=deadline,
                       retries=pending.retries,
                       first_dispatch=pending.first_dispatch,
                       func=pending.func, key=pending.key)

    def _poll(self, active: List[_Active]) -> None:
        """Block briefly until a worker speaks, dies or times out."""
        if not active:
            return
        budget = _POLL_S * 4
        now = time.monotonic()
        deadlines = [e.deadline - now for e in active
                     if e.deadline is not None]
        if deadlines:
            budget = min(budget, max(_POLL_S, min(deadlines)))
        ready = connection_wait([e.conn for e in active],
                                timeout=max(_POLL_S, budget))
        for entry in active:
            if entry.conn in ready and entry.payload is None:
                try:
                    entry.payload = entry.conn.recv()
                except (EOFError, OSError):
                    pass  # process died mid-send: handled as a crash

    def _settle(self, jobs: List[Dict[str, Any]], entry: _Active,
                queue: List[_Pending]):
        """Resolve one in-flight entry.

        Returns a :class:`JobResult` when the job finished (possibly
        degraded), the string ``"requeued"`` on a crash retry, or None
        while the worker is still healthy and inside its deadline.
        """
        job = jobs[entry.index]
        now = time.monotonic()
        exec_s = now - entry.started_at
        if entry.payload is not None:
            self._reap(entry)
            if entry.payload.get("status") == "ok":
                record = entry.payload["result"]
                if self.cache is not None and entry.key is not None:
                    self.cache.put(entry.key, record)
                return self._result(job, entry, "ok", record=record,
                                    exec_s=exec_s)
            # Worker raised: deterministic, degrade rather than retry.
            return self._fallback(job, entry, exec_s,
                                  entry.payload.get("error", "job failed"))
        if entry.deadline is not None and now > entry.deadline:
            self._kill(entry)
            return self._fallback(
                job, entry, exec_s,
                f"timeout after {self.timeout:.1f}s")
        if not entry.process.is_alive():
            # The process may have exited cleanly with its payload still
            # in the pipe buffer (a fast worker racing the poll) — drain
            # before declaring a crash.
            try:
                if entry.conn.poll():
                    entry.payload = entry.conn.recv()
                    return self._settle(jobs, entry, queue)
            except (EOFError, OSError):
                pass
            self._reap(entry)
            if entry.retries < self.retries:
                retries = entry.retries + 1
                queue.append(_Pending(
                    entry.index, attempt=entry.attempt + 1,
                    retries=retries,
                    not_before=now + self.retry_backoff_s * retries,
                    func=entry.func, key=entry.key,
                    first_dispatch=entry.first_dispatch))
                return "requeued"
            code = entry.process.exitcode
            return self._fallback(job, entry, exec_s,
                                  f"worker crashed (exit code {code}), "
                                  f"retries exhausted")
        return None

    # -- degradation ----------------------------------------------------

    def _fallback(self, job: Dict[str, Any], entry: _Active,
                  exec_s: float, reason: str) -> JobResult:
        if not self.degrade:
            return self._result(job, entry, "failed", error=reason,
                                exec_s=exec_s)
        started = time.monotonic()
        try:
            record = degraded_record(job, func=entry.func)
        except Exception as exc:  # noqa: BLE001 — even fallback failed
            return self._result(
                job, entry, "failed",
                error=f"{reason}; fallback failed: "
                      f"{type(exc).__name__}: {exc}",
                exec_s=exec_s)
        exec_s += time.monotonic() - started
        return self._result(job, entry, "degraded", record=record,
                            error=reason, exec_s=exec_s, degraded=True)

    def _result(self, job: Dict[str, Any], entry: _Active, status: str,
                record: Optional[Dict[str, Any]] = None,
                error: Optional[str] = None, exec_s: float = 0.0,
                degraded: bool = False) -> JobResult:
        return JobResult(
            job_id=job["job_id"],
            source=jobspec.source_label(job["source"]),
            flow=job["flow"], status=status, result=record, error=error,
            degraded=degraded, queue_wait_s=entry.first_dispatch,
            exec_s=exec_s, retries=entry.retries)

    # -- process hygiene ------------------------------------------------

    def _reap(self, entry: _Active) -> None:
        entry.process.join(timeout=1.0)
        if entry.process.is_alive():
            self._kill(entry)
            return
        entry.conn.close()

    def _kill(self, entry: _Active) -> None:
        entry.process.terminate()
        entry.process.join(timeout=1.0)
        if entry.process.is_alive():
            entry.process.kill()
            entry.process.join(timeout=1.0)
        entry.conn.close()


def degraded_record(job: Dict[str, Any],
                    func=None) -> Dict[str, Any]:
    """The graceful-degradation result: the trivial Shannon/MUX mapping.

    A :class:`DecompositionEngine` with a zero time budget skips the
    bound-set search entirely and walks the output BDDs into MUX trees —
    bounded by BDD size, deterministic, and never subject to the hang
    the real run may have hit (test hooks only fire inside workers).
    """
    from repro.core.api import map_to_xc3000
    if func is None:
        func = jobspec.build_function(job["source"])
    config = job.get("config") or {}
    fallback = map_to_xc3000(func, use_dontcares=False, time_budget=0.0)
    record = fallback.to_record()
    record["degraded"] = True
    if job.get("flow") == "compare":
        record = {"mulopII": dict(record), "mulop_dc": dict(record),
                  "clbs_saved": 0, "degraded": True}
    elif config.get("verify", True):
        record["verified"] = jobspec._verify_record(func, fallback)
    return record
