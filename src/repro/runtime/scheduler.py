"""Parallel batch scheduler with timeouts, retries and degradation.

The scheduler runs decomposition jobs (see :mod:`repro.runtime.jobspec`)
across a pool of worker *processes* — one process per attempt, so a
wall-clock timeout or a crashed worker is contained by construction:
the parent kills/reaps the process and the batch keeps moving.

Failure policy (the "graceful degradation" contract):

* **timeout** — the worker is killed and the job immediately *degrades*:
  the parent re-runs it through the trivial Shannon/MUX mapping path
  (``DecompositionEngine`` with a zero time budget), which is bounded by
  the BDD size and deterministic.  No retry — a search that timed out
  once will time out again.
* **hang** (heartbeats enabled and silent for ``hang_grace_s``) — same
  as a timeout, without waiting for the full wall-clock budget.  Workers
  beat over the result pipe while the engine makes progress (phase
  transitions bump a liveness pulse; the beat thread only speaks while
  the pulse advances), so a worker stuck in a sleep or a dead loop goes
  silent and is killed early, while a *slow but alive* worker keeps
  beating and is left to its wall-clock budget.  No retry — a hang is
  not transient.
* **worker crash** (process died without a result) — retried with a
  jittered linear backoff up to ``retries`` times, then degraded.
  Crashes are the transient class (OOM kills, signals), so retrying is
  worth it; the jitter (seeded, deterministic per scheduler) spreads
  herd retries after a shared-cause crash.
* **worker exception** (job raised) — deterministic, so no retry: the
  job degrades when the function can still be built, otherwise it is
  marked ``failed`` (e.g. an unreadable PLA file).

Results come back in submission order regardless of completion order,
and each carries its own observability record (queue wait, exec time,
cache hit, retry count, heartbeat count) for the batch metrics document.

With a :class:`~repro.runtime.cache.ResultCache` attached, the parent
builds each function up front, keys it by content
(:meth:`MultiFunction.canonical_key` + flow + engine config + code
version) and skips dispatch entirely on a hit; on a miss the built
function ships to the worker in wire form so it is not rebuilt.

Chaos containment: the parent-side build and the degradation fallback
run under :func:`repro.faults.suppressed`, so injected worker faults
(``worker.mid_decomp``, ``bdd.ite``, ``kernel.dispatch``) can never
take down the scheduler through its own recovery paths.  Parent-side
*storage* faults (``cache.write``, ``journal.append``) stay live — they
exercise the crash-safety story (journal + ``--resume``), not the
containment one.  ``run`` kills and reaps every live worker on the way
out, including on ``KeyboardInterrupt`` — no orphans.
"""

from __future__ import annotations

import multiprocessing
import random
import time
from dataclasses import dataclass, field
from multiprocessing.connection import wait as connection_wait
from typing import Any, Callable, Dict, List, Optional

from repro import faults
from repro.runtime import jobspec
from repro.runtime.cache import ResultCache, cache_key
from repro.runtime.pool import (
    POLL_S,
    EventSink,
    ProgressEvent,
    drain_messages,
    emit_event,
    kill_process,
    reap_process,
    resolve_workers,
)

#: Hard floor for the scheduler's poll interval (seconds).
_POLL_S = POLL_S


@dataclass
class JobResult:
    """Outcome of one batch job, with its observability record."""

    job_id: str
    source: str
    flow: str
    #: "ok" | "degraded" | "failed".
    status: str
    #: The flow's result record (None only when status == "failed").
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    cache_hit: bool = False
    degraded: bool = False
    #: Position in the submitted job list (stable across resume merges).
    index: int = -1
    #: Seconds between batch start and first dispatch of this job.
    queue_wait_s: float = 0.0
    #: Wall-clock seconds of the attempt that produced the outcome.
    exec_s: float = 0.0
    #: Crash retries consumed (0 on a clean first attempt).
    retries: int = 0
    #: Heartbeats received from the attempt that produced the outcome.
    beats: int = 0
    #: True when the job was killed for heartbeat silence (not timeout).
    hung: bool = False

    def as_dict(self, include_blif: bool = False) -> Dict[str, Any]:
        """JSON-able row for the batch JSONL output.

        BLIF text is dropped by default to keep rows one-line small;
        the full record stays on :attr:`result`.
        """
        record = self.result
        if record is not None and not include_blif:
            record = {k: v for k, v in record.items() if k != "blif"}
            for driver in ("mulopII", "mulop_dc"):
                if isinstance(record.get(driver), dict):
                    record[driver] = {k: v
                                      for k, v in record[driver].items()
                                      if k != "blif"}
        return {
            "job_id": self.job_id,
            "source": self.source,
            "flow": self.flow,
            "status": self.status,
            "cache_hit": self.cache_hit,
            "degraded": self.degraded,
            "index": self.index,
            "queue_wait_s": round(self.queue_wait_s, 6),
            "exec_s": round(self.exec_s, 6),
            "retries": self.retries,
            "beats": self.beats,
            "hung": self.hung,
            "result": record,
            "error": self.error,
        }


def _record_quarantined(record: Any) -> int:
    """Quarantined-output count inside one result record (compare-flow
    nesting included)."""
    if not isinstance(record, dict):
        return 0
    total = 0
    engine = record.get("engine")
    if isinstance(engine, dict):
        names = engine.get("quarantined_outputs")
        if isinstance(names, (list, tuple)):
            total += len(names)
    for driver in ("mulopII", "mulop_dc"):
        total += _record_quarantined(record.get(driver))
    return total


def summarize_rows(rows: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Batch totals over JSONL rows (``JobResult.as_dict`` shape).

    Row-based so resumed batches can summarize journal-replayed rows and
    freshly computed ones uniformly.
    """
    return {
        "jobs": len(rows),
        "ok": sum(r.get("status") == "ok" for r in rows),
        "degraded": sum(r.get("status") == "degraded" for r in rows),
        "failed": sum(r.get("status") == "failed" for r in rows),
        "cache_hits": sum(bool(r.get("cache_hit")) for r in rows),
        "retries": sum(int(r.get("retries") or 0) for r in rows),
        "hung": sum(bool(r.get("hung")) for r in rows),
        "quarantined_outputs": sum(_record_quarantined(r.get("result"))
                                   for r in rows),
        "total_exec_s": round(sum(float(r.get("exec_s") or 0.0)
                                  for r in rows), 6),
    }


def summarize(results: List[JobResult]) -> Dict[str, Any]:
    """Batch totals for the metrics document and the CLI summary line."""
    return summarize_rows([r.as_dict() for r in results])


@dataclass
class _Active:
    """Bookkeeping for one in-flight worker process."""

    index: int
    attempt: int
    process: multiprocessing.Process
    conn: Any
    started_at: float
    deadline: Optional[float]
    job_id: str = "?"
    payload: Optional[Dict[str, Any]] = None
    retries: int = 0
    first_dispatch: float = 0.0
    #: Monotonic time of the last heartbeat (dispatch time until one
    #: arrives, so the hang grace covers worker startup too).
    last_beat: float = 0.0
    beats: int = 0
    #: Engine phase piggybacked on the most recent beat.
    phase: Optional[str] = None
    #: Parent-side build artefacts (cache mode only).
    func: Any = None
    key: Optional[str] = None


@dataclass
class _Pending:
    index: int
    attempt: int = 1
    retries: int = 0
    #: Earliest dispatch time (crash-retry backoff).
    not_before: float = 0.0
    func: Any = None
    key: Optional[str] = None
    first_dispatch: Optional[float] = field(default=None)


class BatchScheduler:
    """Run many jobs across a worker pool with bounded failure modes.

    Parameters
    ----------
    workers:
        Concurrent worker processes.  ``None`` and values <= 0 clamp to
        the auto-detected count (CPU count, capped at 8).
    timeout:
        Per-job wall-clock budget in seconds (None = unbounded).
    retries:
        Crash retries per job before degrading.
    cache:
        Optional :class:`ResultCache`; hits skip dispatch entirely.
    degrade:
        When False, timeouts/hangs/crashes mark the job ``failed``
        instead of falling back to the trivial mapping.
    retry_backoff_s:
        Base of the jittered linear crash-retry backoff
        (``base * retries * uniform(0.5, 1.5)``).
    backoff_seed:
        Seed for the backoff jitter stream (deterministic schedules in
        tests).
    heartbeat_s:
        Interval at which workers report liveness (None disables the
        beat thread entirely).
    hang_grace_s:
        Kill a worker silent for this long and degrade its job without
        retry.  None (default) disables hang detection — only the hard
        wall-clock ``timeout`` applies.  Must comfortably exceed
        ``heartbeat_s`` plus worker startup time.
    """

    def __init__(self, workers: Optional[int] = None,
                 timeout: Optional[float] = None, retries: int = 1,
                 cache: Optional[ResultCache] = None,
                 degrade: bool = True,
                 retry_backoff_s: float = 0.25,
                 backoff_seed: int = 0,
                 heartbeat_s: Optional[float] = 1.0,
                 hang_grace_s: Optional[float] = None,
                 mp_context: Optional[str] = None) -> None:
        # None / zero / negative all clamp to the auto-detected count
        # (CPU count capped at 8) — see runtime.pool.resolve_workers.
        self.workers, _ = resolve_workers(workers)
        self.timeout = timeout
        self.retries = max(0, retries)
        self.cache = cache
        self.degrade = degrade
        self.retry_backoff_s = retry_backoff_s
        self.heartbeat_s = heartbeat_s
        self.hang_grace_s = hang_grace_s
        self._rng = random.Random(backoff_seed)
        self._on_event: Optional[EventSink] = None
        #: Sub-ISF memo counters summed over workers' payloads for the
        #: most recent :meth:`run` (rows never carry them — see
        #: :mod:`repro.decomp.submemo`).
        self.submemo_totals: Dict[str, int] = {}
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(mp_context)

    # -- public entry ---------------------------------------------------

    def run(self, jobs: List[Dict[str, Any]],
            on_result: Optional[Callable[[JobResult], None]] = None,
            on_dispatch: Optional[Callable[[int, int], None]] = None,
            on_event: Optional[EventSink] = None) -> List[JobResult]:
        """Execute ``jobs``; results are in submission order.

        ``on_dispatch(index, attempt)`` fires just before each worker
        process starts (the journal's start record); ``on_result`` fires
        as each job settles, out of submission order.  ``on_event``
        receives the full :class:`ProgressEvent` stream (``dispatch``,
        ``beat`` with the engine phase, ``retry``, ``result``) — the
        same API the service tier streams to clients, so batch
        consumers and streaming endpoints share one progress contract.
        """
        started = time.monotonic()
        results: List[Optional[JobResult]] = [None] * len(jobs)
        queue: List[_Pending] = []
        self._on_event = on_event
        self.submemo_totals = {}

        def finish(index: int, res: JobResult) -> None:
            res.index = index
            results[index] = res
            emit_event(on_event, ProgressEvent(
                kind="result", job_id=res.job_id, index=index,
                status=res.status, beats=res.beats,
                detail=res.error))
            if on_result is not None:
                on_result(res)

        for index, job in enumerate(jobs):
            pending = _Pending(index)
            if self.cache is not None:
                hit = self._try_cache(job, pending)
                if hit is not None:
                    finish(index, hit)
                    continue
            queue.append(pending)

        active: List[_Active] = []
        try:
            while queue or active:
                now = time.monotonic()
                while len(active) < self.workers:
                    slot = next((p for p in queue if p.not_before <= now),
                                None)
                    if slot is None:
                        break
                    queue.remove(slot)
                    if on_dispatch is not None:
                        on_dispatch(slot.index, slot.attempt)
                    emit_event(on_event, ProgressEvent(
                        kind="dispatch",
                        job_id=jobs[slot.index]["job_id"],
                        index=slot.index, attempt=slot.attempt))
                    active.append(self._dispatch(jobs, slot, started))
                if active:
                    self._poll(active)
                elif queue:
                    # Everything is in crash-retry backoff; sleep it off.
                    time.sleep(max(_POLL_S,
                                   min(p.not_before for p in queue) - now))
                for entry in list(active):
                    outcome = self._settle(jobs, entry, queue)
                    if outcome is not None:
                        active.remove(entry)
                        if isinstance(outcome, JobResult):
                            finish(entry.index, outcome)
        finally:
            # Interrupt/exception hygiene: whatever got us out of the
            # loop, no worker process may outlive the scheduler.
            for entry in active:
                self._kill(entry)
        return [r for r in results if r is not None]

    # -- cache ----------------------------------------------------------

    def _try_cache(self, job: Dict[str, Any],
                   pending: _Pending) -> Optional[JobResult]:
        """Cache lookup; on a miss the built function and key stick to
        the pending entry so the hot path never builds twice."""
        try:
            # The parent-side build walks the same BDD/kernel code as a
            # worker; suppress injected faults so worker-targeted chaos
            # (bdd.ite, kernel.dispatch) cannot crash the scheduler.
            with faults.suppressed():
                func = jobspec.build_function(job["source"])
        except Exception as exc:  # noqa: BLE001 — bad source: report it
            return JobResult(
                job_id=job["job_id"],
                source=jobspec.source_label(job["source"]),
                flow=job["flow"], status="failed",
                error=f"{type(exc).__name__}: {exc}")
        key = cache_key(func.canonical_key(), job["flow"], job["config"])
        pending.func = func
        pending.key = key
        record = self.cache.get(key)
        if record is None:
            job["wire"] = func.to_wire()
            return None
        return JobResult(
            job_id=job["job_id"],
            source=jobspec.source_label(job["source"]),
            flow=job["flow"], status="ok", result=record,
            cache_hit=True)

    # -- dispatch/poll/settle -------------------------------------------

    def _dispatch(self, jobs: List[Dict[str, Any]], pending: _Pending,
                  batch_started: float) -> _Active:
        now = time.monotonic()
        if pending.first_dispatch is None:
            pending.first_dispatch = now - batch_started
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=jobspec.worker_entry,
            args=(child_conn, jobs[pending.index], pending.attempt,
                  self.heartbeat_s),
            daemon=True)
        process.start()
        child_conn.close()
        deadline = now + self.timeout if self.timeout is not None else None
        return _Active(index=pending.index, attempt=pending.attempt,
                       process=process, conn=parent_conn,
                       started_at=now, deadline=deadline,
                       job_id=jobs[pending.index]["job_id"],
                       retries=pending.retries,
                       first_dispatch=pending.first_dispatch,
                       last_beat=now,
                       func=pending.func, key=pending.key)

    def _poll(self, active: List[_Active]) -> None:
        """Block briefly until a worker speaks, dies or times out."""
        if not active:
            return
        budget = _POLL_S * 4
        now = time.monotonic()
        deadlines = [e.deadline - now for e in active
                     if e.deadline is not None]
        if deadlines:
            budget = min(budget, max(_POLL_S, min(deadlines)))
        ready = connection_wait([e.conn for e in active],
                                timeout=max(_POLL_S, budget))
        for entry in active:
            if entry.conn in ready and entry.payload is None:
                self._drain(entry)

    def _drain(self, entry: _Active) -> None:
        """Consume everything buffered on the entry's pipe: heartbeat
        messages update liveness bookkeeping, the final payload sticks.

        Delegates to the shared :func:`repro.runtime.pool.drain_messages`
        primitive (also used by the persistent serve pool) and turns new
        beats into ``beat`` progress events.
        """
        new_beats = drain_messages(entry)
        if new_beats:
            emit_event(self._on_event, ProgressEvent(
                kind="beat", job_id=entry.job_id, index=entry.index,
                attempt=entry.attempt, phase=entry.phase,
                beats=entry.beats))

    def _settle(self, jobs: List[Dict[str, Any]], entry: _Active,
                queue: List[_Pending]):
        """Resolve one in-flight entry.

        Returns a :class:`JobResult` when the job finished (possibly
        degraded), the string ``"requeued"`` on a crash retry, or None
        while the worker is still healthy and inside its deadline.
        """
        job = jobs[entry.index]
        now = time.monotonic()
        exec_s = now - entry.started_at
        if entry.payload is not None:
            self._reap(entry)
            for name, count in (entry.payload.get("submemo")
                                or {}).items():
                self.submemo_totals[name] = \
                    self.submemo_totals.get(name, 0) + int(count)
            if entry.payload.get("status") == "ok":
                record = entry.payload["result"]
                if self.cache is not None and entry.key is not None:
                    self.cache.put(entry.key, record)
                return self._result(job, entry, "ok", record=record,
                                    exec_s=exec_s)
            # Worker raised: deterministic, degrade rather than retry.
            return self._fallback(job, entry, exec_s,
                                  entry.payload.get("error", "job failed"))
        if entry.deadline is not None and now > entry.deadline:
            self._kill(entry)
            return self._fallback(
                job, entry, exec_s,
                f"timeout after {self.timeout:.1f}s")
        if (self.hang_grace_s is not None and self.heartbeat_s
                and entry.process.is_alive()
                and now - entry.last_beat > self.hang_grace_s):
            # Heartbeats went silent: the worker is stuck, not slow.
            # Kill and degrade without retry — a hang is deterministic.
            self._kill(entry)
            phase = f" in phase {entry.phase!r}" if entry.phase else ""
            return self._fallback(
                job, entry, exec_s,
                f"hung (no heartbeat for {now - entry.last_beat:.1f}s"
                f"{phase})", hung=True)
        if not entry.process.is_alive():
            # The process may have exited cleanly with its payload still
            # in the pipe buffer (a fast worker racing the poll) — drain
            # before declaring a crash.
            self._drain(entry)
            if entry.payload is not None:
                return self._settle(jobs, entry, queue)
            self._reap(entry)
            if entry.retries < self.retries:
                retries = entry.retries + 1
                backoff = (self.retry_backoff_s * retries
                           * self._rng.uniform(0.5, 1.5))
                queue.append(_Pending(
                    entry.index, attempt=entry.attempt + 1,
                    retries=retries,
                    not_before=now + backoff,
                    func=entry.func, key=entry.key,
                    first_dispatch=entry.first_dispatch))
                emit_event(self._on_event, ProgressEvent(
                    kind="retry", job_id=entry.job_id,
                    index=entry.index, attempt=entry.attempt + 1,
                    detail=f"worker crashed (exit code "
                           f"{entry.process.exitcode})"))
                return "requeued"
            code = entry.process.exitcode
            return self._fallback(job, entry, exec_s,
                                  f"worker crashed (exit code {code}), "
                                  f"retries exhausted")
        return None

    # -- degradation ----------------------------------------------------

    def _fallback(self, job: Dict[str, Any], entry: _Active,
                  exec_s: float, reason: str,
                  hung: bool = False) -> JobResult:
        if not self.degrade:
            return self._result(job, entry, "failed", error=reason,
                                exec_s=exec_s, hung=hung)
        started = time.monotonic()
        try:
            # Recovery must succeed even under chaos: the fallback walks
            # engine/BDD code where worker faults are armed, and a fault
            # here would turn a contained degrade into a parent crash.
            with faults.suppressed():
                record = degraded_record(job, func=entry.func)
        except Exception as exc:  # noqa: BLE001 — even fallback failed
            return self._result(
                job, entry, "failed",
                error=f"{reason}; fallback failed: "
                      f"{type(exc).__name__}: {exc}",
                exec_s=exec_s, hung=hung)
        exec_s += time.monotonic() - started
        return self._result(job, entry, "degraded", record=record,
                            error=reason, exec_s=exec_s, degraded=True,
                            hung=hung)

    def _result(self, job: Dict[str, Any], entry: _Active, status: str,
                record: Optional[Dict[str, Any]] = None,
                error: Optional[str] = None, exec_s: float = 0.0,
                degraded: bool = False, hung: bool = False) -> JobResult:
        return JobResult(
            job_id=job["job_id"],
            source=jobspec.source_label(job["source"]),
            flow=job["flow"], status=status, result=record, error=error,
            degraded=degraded, queue_wait_s=entry.first_dispatch,
            exec_s=exec_s, retries=entry.retries, beats=entry.beats,
            hung=hung)

    # -- process hygiene ------------------------------------------------

    def _reap(self, entry: _Active) -> None:
        reap_process(entry.process, entry.conn)

    def _kill(self, entry: _Active) -> None:
        kill_process(entry.process, entry.conn)


def degraded_record(job: Dict[str, Any],
                    func=None) -> Dict[str, Any]:
    """The graceful-degradation result: the trivial Shannon/MUX mapping.

    A :class:`DecompositionEngine` with a zero time budget skips the
    bound-set search entirely and walks the output BDDs into MUX trees —
    bounded by BDD size, deterministic, and never subject to the hang
    the real run may have hit (test hooks only fire inside workers).
    """
    from repro.core.api import map_to_xc3000
    if func is None:
        func = jobspec.build_function(job["source"])
    config = job.get("config") or {}
    fallback = map_to_xc3000(func, use_dontcares=False, time_budget=0.0)
    record = fallback.to_record()
    record["degraded"] = True
    if job.get("flow") == "compare":
        record = {"mulopII": dict(record), "mulop_dc": dict(record),
                  "clbs_saved": 0, "degraded": True}
    elif config.get("verify", True):
        record["verified"] = jobspec._verify_record(func, fallback)
    return record
