"""Job specifications and worker-side execution for the batch runtime.

A *job* is a plain JSON-able dict — that is the wire format between the
scheduler (parent) and its worker processes, and the unit a batch
manifest describes::

    {"job_id": "rd84", "source": {"kind": "benchmark", "name": "rd84"},
     "flow": "map", "config": {"use_dontcares": True}, ...}

Workers never share BDD managers with the parent: each attempt rebuilds
the function from the job's ``wire`` payload (a
:meth:`~repro.boolfunc.spec.MultiFunction.to_wire` dump, preferred) or
from its source descriptor, runs the flow, verifies the mapped network
and ships a JSON-able result back.  Rebuilding from scratch is what
makes parallel results bit-identical to serial runs — same code path,
same fresh manager, no shared mutable state.

Source descriptor kinds
-----------------------
``benchmark``   a registry circuit (``{"name": "rd84"}``)
``generator``   ``adderN``/``pmN`` (``{"name": "adder8"}``)
``pla``/``blif``  a file (``{"path": ...}``)
``synthetic``   a seeded synthetic instance
                (``{"name", "inputs", "outputs", "seed"}``)
``wire``        an inline :meth:`to_wire` dump (``{"data": ...}``)

Test hooks (``hang:<seconds>``, ``sleep:<seconds>``, ``crash`` /
``crash:<n>``) fire inside the worker before any real work; they exist
so the scheduler's timeout, retry and degradation paths are testable
end to end (``sleep`` continues afterwards — it makes a job wall-clock
bound, which is what the distributed benchmarks scale against).
"""

from __future__ import annotations

import hashlib
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from repro import faults
from repro.boolfunc.spec import MultiFunction
from repro.obs.profiler import current_phase_snapshot, pulse, pulse_count

#: Networks above this LUT count are verified by random simulation
#: instead of the exact BDD check (same policy as the bench harness).
VERIFY_FORMAL_LIMIT = 3000

_GENERATOR_PREFIXES = ("adder", "pm")


def make_job(source: Dict[str, Any], *, job_id: Optional[str] = None,
             flow: str = "map", config: Optional[Dict[str, Any]] = None,
             test_hook: Optional[str] = None) -> Dict[str, Any]:
    """Assemble a job dict (the scheduler's input unit)."""
    if flow not in ("map", "compare"):
        raise ValueError(f"unknown flow {flow!r} (use 'map' or 'compare')")
    return {
        "job_id": job_id or source_label(source),
        "source": source,
        "flow": flow,
        "config": dict(config or {}),
        "test_hook": test_hook,
    }


def source_label(source: Dict[str, Any]) -> str:
    """Short human-readable name for a source descriptor."""
    kind = source.get("kind")
    if kind in ("benchmark", "generator"):
        return source["name"]
    if kind in ("pla", "blif"):
        if "path" in source:
            return f"{kind}:{source['path']}"
        digest = hashlib.sha256(
            source.get("body", "").encode()).hexdigest()[:12]
        return f"{kind}:inline:{digest}"
    if kind == "synthetic":
        return (f"synth:{source['name']}:{source['inputs']}:"
                f"{source['outputs']}:{source.get('seed')}")
    if kind == "wire":
        return source.get("label", "wire")
    return str(kind)


def build_function(source: Dict[str, Any]) -> MultiFunction:
    """Reconstruct the :class:`MultiFunction` a descriptor names.

    Raises ``ValueError`` on malformed descriptors and propagates I/O
    and parse errors for file-backed sources.
    """
    kind = source.get("kind")
    if kind == "benchmark":
        from repro.bench.registry import benchmark
        return benchmark(source["name"])
    if kind == "generator":
        name = source["name"]
        for prefix in _GENERATOR_PREFIXES:
            if name.startswith(prefix):
                suffix = name[len(prefix):]
                if not suffix.isdigit() or int(suffix) < 1:
                    break
                if prefix == "adder":
                    from repro.arith.adders import adder_function
                    return adder_function(int(suffix))
                from repro.arith.multipliers import (
                    partial_multiplier_function,
                )
                return partial_multiplier_function(int(suffix))
        raise ValueError(f"malformed generator name {name!r}")
    if kind == "pla":
        from repro.boolfunc.pla import parse_pla
        if "path" in source:
            with open(source["path"]) as handle:
                return parse_pla(handle.read())
        return parse_pla(source["body"])
    if kind == "blif":
        from repro.boolfunc.blif import parse_blif
        if "path" in source:
            with open(source["path"]) as handle:
                return parse_blif(handle.read())
        return parse_blif(source["body"])
    if kind == "synthetic":
        from repro.bench.synthetic import synthetic_circuit
        return synthetic_circuit(
            source["name"], int(source["inputs"]), int(source["outputs"]),
            seed=source.get("seed"))
    if kind == "wire":
        return MultiFunction.from_wire(source["data"])
    raise ValueError(f"unknown source kind {kind!r}")


def source_from_name(name: str) -> Dict[str, Any]:
    """Descriptor for a bare circuit name (registry or generator)."""
    from repro.bench.registry import BENCHMARKS
    if name in BENCHMARKS:
        return {"kind": "benchmark", "name": name}
    for prefix in _GENERATOR_PREFIXES:
        suffix = name[len(prefix):] if name.startswith(prefix) else ""
        if suffix.isdigit() and int(suffix) >= 1:
            return {"kind": "generator", "name": name}
    raise ValueError(
        f"unknown circuit {name!r}: not a registered benchmark and not "
        f"an adderN/pmN generator")


def parse_manifest_entry(entry: str) -> Dict[str, Any]:
    """One manifest line -> a job dict (without flow/config).

    Grammar: a circuit name, ``pla:<path>``, ``blif:<path>`` or
    ``synth:<name>:<inputs>:<outputs>[:<seed>]``, optionally followed by
    a ``!hang=<s>`` / ``!sleep=<s>`` / ``!crash[=<n>]`` test hook.
    """
    hook = None
    if "!" in entry:
        entry, _, hook_text = entry.partition("!")
        entry = entry.strip()
        hook_text = hook_text.strip()
        hook = hook_text.replace("=", ":", 1)
    if entry.startswith("pla:"):
        source: Dict[str, Any] = {"kind": "pla", "path": entry[4:]}
    elif entry.startswith("blif:"):
        source = {"kind": "blif", "path": entry[5:]}
    elif entry.startswith("synth:"):
        parts = entry.split(":")
        if len(parts) not in (4, 5):
            raise ValueError(
                f"malformed synthetic entry {entry!r} (use "
                f"synth:<name>:<inputs>:<outputs>[:<seed>])")
        source = {"kind": "synthetic", "name": parts[1],
                  "inputs": int(parts[2]), "outputs": int(parts[3])}
        if len(parts) == 5:
            source["seed"] = parts[4]
    else:
        source = source_from_name(entry)
    return make_job(source, test_hook=hook)


def parse_manifest(text: str) -> List[Dict[str, Any]]:
    """Parse a manifest: one entry per line, ``#`` comments, blanks
    skipped.  Returns job dicts (flow/config filled in by the caller)."""
    jobs = []
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        try:
            jobs.append(parse_manifest_entry(line))
        except ValueError as exc:
            raise ValueError(f"manifest line {lineno}: {exc}") from exc
    return jobs


# ---------------------------------------------------------------------
# Worker-side execution
# ---------------------------------------------------------------------

def _apply_test_hook(hook: Optional[str], attempt: int) -> None:
    """Manifest ``!hang``/``!crash`` hooks — thin aliases over the fault
    injector's kinds (:func:`repro.faults.perform`), so manifests and
    ``REPRO_FAULTS`` specs share one implementation of "hang" and
    "crash"."""
    if not hook:
        return
    kind, _, arg = hook.partition(":")
    if kind == "hang":
        faults.perform("hang", site="test_hook",
                       seconds=float(arg) if arg else None)
    elif kind == "sleep":
        # A bounded wall-clock stall that then *continues* the job —
        # models an I/O-bound phase (unlike ``hang``, which never
        # returns and exists to trip the hang detector).  The dist
        # benchmarks use it to make jobs wall-clock-bound so speedup
        # measures concurrency, not CPU count.
        time.sleep(float(arg) if arg else 0.1)
    elif kind == "crash":
        # Crash the first <n> attempts (every attempt when unbounded);
        # os._exit sidesteps any exception handling, like a real segfault.
        limit = int(arg) if arg else 10**9
        if attempt <= limit:
            faults.perform("crash", site="test_hook")
    else:
        raise ValueError(f"unknown test hook {hook!r}")


def _verify_record(func: MultiFunction, result) -> bool:
    if result.lut_count <= VERIFY_FORMAL_LIMIT:
        from repro.verify.equiv import check_extension
        return bool(check_extension(func, result.network))
    from repro.network.bitsim import sample_check
    return sample_check(func, result.network, patterns=256)


def execute_job(job: Dict[str, Any], attempt: int = 1,
                build: Optional[Callable[[Dict[str, Any]],
                                         MultiFunction]] = None
                ) -> Dict[str, Any]:
    """Run one job to completion in the current process.

    Returns ``{"status": "ok", "result": <record>}``; any exception is
    the caller's to handle (the worker entry point converts it into a
    ``failed`` payload, the scheduler into a retry/degrade decision).

    ``build`` overrides how the :class:`MultiFunction` is obtained —
    persistent pool workers pass a memoising builder so repeat sources
    reuse an already-built function (and its warm BDD manager) instead
    of rebuilding from the wire dump.  It runs *after* the
    ``worker.start`` fault site and test hooks, preserving the
    per-attempt chaos ordering of one-shot workers.
    """
    faults.fault_point("worker.start")
    _apply_test_hook(job.get("test_hook"), attempt)
    if build is not None:
        func = build(job)
    elif job.get("wire"):
        func = MultiFunction.from_wire(job["wire"])
    else:
        func = build_function(job["source"])
    pulse()  # liveness checkpoint: function built, flow starting
    config = job.get("config") or {}
    verify = config.get("verify", True)
    engine_cfg = {k: config[k] for k in
                  ("time_budget", "node_budget") if config.get(k)}
    from repro.core.api import map_to_xc3000
    submemo_counts: Dict[str, int] = {}

    def _tally_submemo(mapped) -> None:
        for name, count in (mapped.stats.submemo or {}).items():
            submemo_counts[name] = submemo_counts.get(name, 0) + count

    if job.get("flow") == "compare":
        baseline = map_to_xc3000(func, use_dontcares=False, **engine_cfg)
        with_dc = map_to_xc3000(func, use_dontcares=True, **engine_cfg)
        _tally_submemo(baseline)
        _tally_submemo(with_dc)
        record = {
            "mulopII": baseline.to_record(),
            "mulop_dc": with_dc.to_record(),
            "clbs_saved": baseline.clb_count - with_dc.clb_count,
        }
        if verify:
            record["verified"] = (_verify_record(func, baseline)
                                  and _verify_record(func, with_dc))
    else:
        result = map_to_xc3000(
            func, use_dontcares=config.get("use_dontcares", True),
            **engine_cfg)
        _tally_submemo(result)
        record = result.to_record()
        if verify:
            record["verified"] = _verify_record(func, result)
    if record.get("verified") is False:
        # A mapped network that fails verification must never be cached
        # or reported as a success; the scheduler degrades the job to
        # the (independently verified) trivial mapping instead.
        return {"status": "failed", "result": record,
                "error": "verification mismatch"}
    payload = {"status": "ok", "result": record}
    if submemo_counts:
        # Ride next to the record, never inside it: rows and cache
        # entries stay byte-identical whether the memo hit or missed.
        payload["submemo"] = submemo_counts
    return payload


def start_beat_thread(conn, send_lock: threading.Lock,
                      interval_s: float) -> threading.Event:
    """Ship liveness beats to the parent while the main thread makes
    progress.

    A beat is only sent when the process-global pulse (bumped on every
    profiler phase transition and at coarse runtime checkpoints) has
    advanced since the last check — a main thread stuck in a sleep or a
    dead loop stops pulsing, the beats stop, and the scheduler's hang
    grace fires.  The thread itself staying alive is deliberately *not*
    enough to count as liveness.
    """
    stop = threading.Event()

    def beat() -> None:
        last_pulse = -1  # first check always beats: "I started up"
        while not stop.wait(interval_s if last_pulse >= 0 else 0.0):
            seen = pulse_count()
            if seen == last_pulse:
                continue
            last_pulse = seen
            try:
                with send_lock:
                    conn.send({"beat": True,
                               "phase": current_phase_snapshot()})
            except (BrokenPipeError, OSError):
                return  # parent is gone; nothing left to report to

    thread = threading.Thread(target=beat, name="repro-heartbeat",
                              daemon=True)
    thread.start()
    return stop


def worker_entry(conn, job: Dict[str, Any], attempt: int,
                 heartbeat_s: Optional[float] = None) -> None:
    """Process entry point: execute and ship the payload over ``conn``.

    With ``heartbeat_s`` set, a daemon thread reports liveness beats
    alongside the final payload (same pipe, send-lock serialized).
    """
    # Forked workers inherit the parent's fault-arrival counters; each
    # attempt must count its own arrivals for nth-firing determinism.
    faults.reset_in_worker()
    send_lock = threading.Lock()
    stop = None
    if heartbeat_s is not None and heartbeat_s > 0:
        stop = start_beat_thread(conn, send_lock, heartbeat_s)
    try:
        payload = execute_job(job, attempt)
    except BaseException as exc:  # noqa: BLE001 — report, don't die silently
        payload = {"status": "failed",
                   "error": f"{type(exc).__name__}: {exc}"}
    if stop is not None:
        stop.set()
    try:
        with send_lock:
            conn.send(payload)
        conn.close()
    except (BrokenPipeError, OSError):
        pass
