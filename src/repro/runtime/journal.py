"""Crash-safe write-ahead journal for batch runs.

A journal is a JSONL file the batch parent appends to as jobs start and
finish, fsync'd per record, so a ``kill -9`` mid-batch costs only the
jobs that were in flight::

    {"kind": "header", "journal_version": 1, "binding": "...",
     "code_version": "...", "jobs": [<job dict>, ...]}
    {"kind": "start", "index": 0, "job_id": "rd53", "attempt": 1}
    {"kind": "done",  "index": 0, "row": {<JobResult.as_dict()>}}
    {"kind": "claim",    "index": 3, "node": "host:port"}   (dist only)
    {"kind": "reassign", "index": 3, "node": "host:port"}   (dist only)
    ...

* The **header** binds the journal to its workload: ``jobs`` carries the
  full job dicts (so ``repro batch --resume <journal>`` is
  self-contained — no manifest needed), and ``binding`` is a SHA-256
  over those jobs plus the runtime code version
  (:func:`journal_binding`).  Resuming against a different manifest or a
  different code version is refused — replaying half a batch under
  changed semantics would silently mix incomparable rows.
* **start** records mark dispatch; a start without a matching done is a
  job that was *in flight* when the parent died — resume re-runs it.
* **done** records carry the full result row; resume skips these jobs
  and splices the recorded rows into the merged output verbatim, which
  is what makes an interrupted-then-resumed batch byte-identical to an
  uninterrupted one modulo timing/retry fields.
* **claim**/**reassign** records are written only by the distributed
  coordinator (``repro batch --nodes --journal``): a claim binds an
  in-flight index to the node it shipped to, a reassign marks that
  binding void (node loss).  Resume does not need them — a claim
  without a done is in-flight and reruns regardless — but they make a
  post-mortem journal tell the whole story of who held what when.

Torn tails (the parent died mid-append) and corrupted records (chaos
``journal.append:corrupt`` bit-flips) are *skipped and counted*, never
trusted: a job whose done record is unreadable is simply re-run.
Appends route through the ``journal.append`` fault site; append
*failures* disable journaling for the rest of the run instead of
killing the batch (the journal is a durability aid, not a correctness
dependency — a batch without a journal is merely unresumable).
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import threading
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.faults import fault_point
from repro.runtime.cache import CACHE_CODE_VERSION

#: Bump on layout changes; resume refuses mismatched journals.
JOURNAL_VERSION = 1

#: Job-dict keys covered by the binding hash (``wire`` payloads are
#: derived state and excluded).
_BINDING_KEYS = ("job_id", "source", "flow", "config", "test_hook")


class JournalError(ValueError):
    """An unusable journal (missing/invalid header, binding mismatch)."""


def journal_binding(jobs: List[Dict[str, Any]]) -> str:
    """SHA-256 binding a job list + runtime code version.

    Deterministic across processes: only the declarative job fields are
    hashed, with sorted keys.
    """
    view = [{key: job.get(key) for key in _BINDING_KEYS} for job in jobs]
    blob = json.dumps({"jobs": view, "code": CACHE_CODE_VERSION},
                      sort_keys=True, separators=(",", ":")).encode()
    return hashlib.sha256(blob).hexdigest()


def _strip_wire(job: Dict[str, Any]) -> Dict[str, Any]:
    return {k: v for k, v in job.items() if k != "wire"}


class BatchJournal:
    """Appender for one batch run's journal file.

    ``site`` names the fault site every append routes through — the
    single-host scheduler journals under ``journal.append``, the
    distributed coordinator under ``coord.journal`` — so chaos can arm
    either tier independently.  Appends are serialized by an internal
    lock: the coordinator's per-node reader threads all record rows.
    """

    def __init__(self, path: str, handle,
                 site: str = "journal.append") -> None:
        self.path = path
        self._handle = handle
        self.site = site
        self._lock = threading.Lock()
        #: Set after an append failure; later appends become no-ops.
        self.broken = False

    # -- construction ----------------------------------------------------

    @classmethod
    def create(cls, path: str, jobs: List[Dict[str, Any]],
               site: str = "journal.append") -> "BatchJournal":
        """Start a fresh journal: truncate and write the bound header."""
        handle = open(path, "wb")
        journal = cls(path, handle, site=site)
        journal._append({
            "kind": "header",
            "journal_version": JOURNAL_VERSION,
            "binding": journal_binding(jobs),
            "code_version": CACHE_CODE_VERSION,
            "jobs": [_strip_wire(job) for job in jobs],
        })
        return journal

    @classmethod
    def resume(cls, path: str,
               site: str = "journal.append") -> "BatchJournal":
        """Reopen an existing journal for appending (post-:func:`load`)."""
        return cls(path, open(path, "ab"), site=site)

    # -- records ---------------------------------------------------------

    def record_start(self, index: int, job_id: str, attempt: int) -> None:
        self._append({"kind": "start", "index": index, "job_id": job_id,
                      "attempt": attempt})

    def record_done(self, index: int, row: Dict[str, Any]) -> None:
        self._append({"kind": "done", "index": index, "row": row})

    def record_claim(self, index: int, node: str) -> None:
        """Bind an in-flight ``index`` to the node it was shipped to."""
        self._append({"kind": "claim", "index": index, "node": node})

    def record_reassign(self, index: int, node: str) -> None:
        """Void a claim: ``node`` was lost holding ``index``."""
        self._append({"kind": "reassign", "index": index, "node": node})

    def _append(self, record: Dict[str, Any]) -> None:
        if self.broken:
            return
        data = (json.dumps(record, separators=(",", ":")) + "\n").encode()
        try:
            with self._lock:
                data = fault_point(self.site, data)
                self._handle.write(data)
                self._handle.flush()
                os.fsync(self._handle.fileno())
        except Exception as exc:  # noqa: BLE001 — journaling is best-effort
            self.broken = True
            print(f"warning: journal append failed "
                  f"({type(exc).__name__}: {exc}); journaling disabled "
                  f"for the rest of this run", file=sys.stderr)

    def close(self) -> None:
        try:
            self._handle.close()
        except OSError:
            pass


def load_journal(path: str) -> Tuple[Dict[str, Any],
                                     Dict[int, Dict[str, Any]],
                                     Set[int], int]:
    """Read a journal back: ``(header, done_rows, started, corrupt)``.

    ``done_rows`` maps job *index* (position in the header's job list)
    to the recorded result row; ``started`` is the set of indexes with a
    start record (in-flight = started minus done); ``corrupt`` counts
    skipped unreadable lines (torn tail included).

    Raises :class:`JournalError` when the header is missing, malformed,
    from another journal version, or from another code version.
    """
    header: Optional[Dict[str, Any]] = None
    done: Dict[int, Dict[str, Any]] = {}
    started: Set[int] = set()
    corrupt = 0
    with open(path, "rb") as handle:
        for lineno, raw in enumerate(handle, 1):
            try:
                record = json.loads(raw.decode())
            except (ValueError, UnicodeDecodeError):
                # Torn tail or chaos-corrupted record: skip, never trust.
                corrupt += 1
                continue
            if not isinstance(record, dict):
                corrupt += 1
                continue
            if lineno == 1:
                if (record.get("kind") != "header"
                        or record.get("journal_version") != JOURNAL_VERSION
                        or not isinstance(record.get("jobs"), list)):
                    raise JournalError(
                        f"{path}: not a batch journal (bad or missing "
                        f"header)")
                if record.get("code_version") != CACHE_CODE_VERSION:
                    raise JournalError(
                        f"{path}: journal was written by code version "
                        f"{record.get('code_version')!r}, this is "
                        f"{CACHE_CODE_VERSION!r} — results would not be "
                        f"comparable; rerun the batch from scratch")
                header = record
                continue
            if header is None:
                raise JournalError(f"{path}: no journal header")
            kind = record.get("kind")
            index = record.get("index")
            if not isinstance(index, int):
                corrupt += 1
                continue
            if kind == "start":
                started.add(index)
            elif kind == "done" and isinstance(record.get("row"), dict):
                done[index] = record["row"]
            elif kind == "claim":
                # A distributed claim implies dispatch even if the start
                # append was the record the crash tore.
                started.add(index)
            elif kind == "reassign":
                pass  # membership bookkeeping; nothing to replay
            else:
                corrupt += 1
    if header is None:
        raise JournalError(f"{path}: empty journal (no header)")
    if header.get("binding") != journal_binding(header["jobs"]):
        raise JournalError(
            f"{path}: header binding mismatch — the job list was "
            f"modified after the journal was written")
    # Rows for indexes outside the job list are corruption, not data.
    n = len(header["jobs"])
    for index in [i for i in done if not 0 <= i < n]:
        del done[index]
        corrupt += 1
    started = {i for i in started if 0 <= i < n}
    return header, done, started, corrupt
