"""Persistent result cache for decomposition jobs.

Results are content-addressed: the key is a SHA-256 over the function's
:meth:`~repro.boolfunc.spec.MultiFunction.canonical_key` (so renaming a
benchmark or re-reading the same PLA hits the same entry), the flow and
engine configuration, and a code-version tag that invalidates the whole
cache when the algorithms change.  Entries live one-per-file under a
two-level sharded directory; an in-memory LRU front absorbs repeated
lookups within a process.

Corruption is treated as a miss, never as data: an entry that fails to
parse, carries the wrong layout version, or does not match its own key
is deleted and recounted as ``corrupt`` — a poisoned cache rebuilds
itself instead of being trusted.

Chaos hardening: reads and writes route their raw bytes through the
``cache.read`` / ``cache.write`` fault sites (:mod:`repro.faults`), and
every failure mode is contained — an injected exception or memory
exhaustion during a read is a miss, during a write a skipped (counted)
write; a corrupted payload is caught by the existing poisoning checks
on the next read and rebuilt.  The cache is an accelerator, never a
correctness dependency, so no cache failure may escape to the caller.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import time
from collections import OrderedDict, deque
from pathlib import Path
from time import perf_counter
from typing import Any, Dict, Optional

from repro.faults import FaultInjected, fault_point

#: Bump to invalidate every persisted entry (layout changes).
CACHE_FORMAT_VERSION = 1

#: Tag mixed into every key; bump when engine/mapping output can change
#: for the same input (a stale hit would silently misreport results).
CACHE_CODE_VERSION = "repro-1.0.0/runtime-1"

#: Environment override for the default on-disk location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Sliding window of per-``get`` latency samples kept for the hit and
#: miss percentiles — recent behaviour, bounded memory.
LATENCY_WINDOW = 512

#: The default namespace: whole-job results, stored in the original
#: (pre-namespace) directory layout so existing caches keep hitting.
DEFAULT_NAMESPACE = "jobs"

_HEX = set("0123456789abcdef")


def _is_shard_dir(name: str) -> bool:
    """A two-hex-character shard directory (vs a namespace directory)."""
    return len(name) == 2 and set(name) <= _HEX


def list_namespaces(root: "Path | str | None" = None) -> list:
    """Namespaces present on disk under ``root`` (always includes
    ``jobs``): the legacy layout keeps job shards directly under the
    root, every other namespace nests its shards one directory down, so
    the two are distinguishable by name shape alone."""
    base = Path(root) if root is not None else default_cache_dir()
    names = [DEFAULT_NAMESPACE]
    try:
        children = sorted(base.iterdir())
    except (FileNotFoundError, NotADirectoryError, OSError):
        return names
    for child in children:
        if child.is_dir() and not _is_shard_dir(child.name) \
                and child.name not in names:
            names.append(child.name)
    return names


def _latency_percentiles(samples) -> Dict[str, Any]:
    """Nearest-rank p50/p90/p99 (milliseconds) over a sample window."""
    data = sorted(samples)
    if not data:
        return {"p50_ms": None, "p90_ms": None, "p99_ms": None,
                "samples": 0}
    def rank(p: float) -> float:
        idx = max(0, math.ceil(p * len(data)) - 1)
        return round(data[idx] * 1000.0, 6)
    return {"p50_ms": rank(0.50), "p90_ms": rank(0.90),
            "p99_ms": rank(0.99), "samples": len(data)}


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/repro``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def cache_key(func_key: str, flow: str, config: Dict[str, Any]) -> str:
    """Combine function content, flow and engine config into one key."""
    blob = json.dumps({
        "func": func_key,
        "flow": flow,
        "config": config,
        "code": CACHE_CODE_VERSION,
    }, sort_keys=True, separators=(",", ":")).encode()
    return hashlib.sha256(blob).hexdigest()


class ResultCache:
    """On-disk result store with an in-memory LRU front.

    ``memory_limit`` bounds the LRU entry count (0 disables the front
    entirely); the disk side is unbounded and shared between processes —
    writes go through a same-directory temp file + ``os.replace`` so a
    concurrent reader never sees a half-written entry.

    ``namespace`` partitions the store: ``jobs`` (the default) keeps the
    original layout (``root/<2-hex shard>/<key>.json``) so pre-existing
    caches keep hitting, every other namespace (e.g. ``submemo``) nests
    its shards under ``root/<namespace>/``.  Namespace directories can
    never collide with job shards because shard names are exactly two
    hex characters.
    """

    def __init__(self, root: "Path | str | None" = None,
                 memory_limit: int = 256,
                 namespace: str = DEFAULT_NAMESPACE) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.namespace = namespace
        if namespace != DEFAULT_NAMESPACE and _is_shard_dir(namespace):
            raise ValueError(
                f"namespace {namespace!r} would collide with a shard dir")
        self.memory_limit = memory_limit
        self._lru: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        #: Writes skipped because persisting failed (I/O error, injected
        #: fault, memory exhaustion) — the payload stays correct in
        #: memory, the disk entry is simply absent.
        self.write_errors = 0
        #: Sliding windows of per-``get`` wall latencies, split by
        #: outcome — the hit window says what a (local or remote) hit
        #: costs, the miss window what a probe that found nothing costs.
        self._hit_latency: "deque[float]" = deque(maxlen=LATENCY_WINDOW)
        self._miss_latency: "deque[float]" = deque(maxlen=LATENCY_WINDOW)

    # -- paths ---------------------------------------------------------

    @property
    def ns_root(self) -> Path:
        """Directory this namespace's shards live under."""
        if self.namespace == DEFAULT_NAMESPACE:
            return self.root
        return self.root / self.namespace

    def _path(self, key: str) -> Path:
        return self.ns_root / key[:2] / f"{key}.json"

    # -- lookup/store ---------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached payload for ``key``, or None on miss/corruption.

        An entry unlinked concurrently (a ``repro cache clear`` racing
        this reader) is a plain miss — never an exception and never
        counted as corruption.  Every call lands one latency sample in
        the hit or miss window (:data:`LATENCY_WINDOW`).
        """
        start = perf_counter()
        payload = self._lookup(key)
        window = self._hit_latency if payload is not None \
            else self._miss_latency
        window.append(perf_counter() - start)
        return payload

    def _lookup(self, key: str) -> Optional[Dict[str, Any]]:
        """The untimed lookup ladder (LRU front, then disk).  Subclasses
        layer extra tiers here so :meth:`get` keeps the counters and the
        latency windows for them."""
        cached = self._lru.get(key)
        if cached is not None:
            self._lru.move_to_end(key)
            self.hits += 1
            return cached
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
            data = fault_point("cache.read", data)
            entry = json.loads(data.decode())
        except FileNotFoundError:
            self.misses += 1
            return None
        except (FaultInjected, MemoryError):
            # Injected read failure: the entry on disk may be fine, so
            # this is a plain miss, not corruption.
            self.misses += 1
            return None
        except (OSError, ValueError, UnicodeDecodeError):
            self._drop_corrupt(path)
            self.misses += 1
            return None
        if (not isinstance(entry, dict)
                or entry.get("cache_version") != CACHE_FORMAT_VERSION
                or entry.get("key") != key
                or not isinstance(entry.get("payload"), dict)):
            self._drop_corrupt(path)
            self.misses += 1
            return None
        payload = entry["payload"]
        self._remember(key, payload)
        self.hits += 1
        return payload

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Persist ``payload`` under ``key`` (atomic on POSIX).

        Never raises: a failed write (I/O error, injected fault, memory
        exhaustion) is counted in ``write_errors`` and skipped — the
        caller keeps its in-memory result either way.  A chaos
        ``cache.write:corrupt`` bit-flip lands *in the persisted bytes*,
        exercising the poisoning checks on the next read.
        """
        path = self._path(key)
        entry = {"cache_version": CACHE_FORMAT_VERSION, "key": key,
                 "payload": payload}
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        try:
            data = json.dumps(entry, separators=(",", ":")).encode()
            data = fault_point("cache.write", data)
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except (FaultInjected, MemoryError, OSError):
            self.write_errors += 1
            try:
                tmp.unlink()
            except OSError:
                pass
            return
        self._remember(key, payload)

    def _remember(self, key: str, payload: Dict[str, Any]) -> None:
        if self.memory_limit <= 0:
            return
        self._lru[key] = payload
        self._lru.move_to_end(key)
        while len(self._lru) > self.memory_limit:
            self._lru.popitem(last=False)

    def invalidate(self, key: str) -> None:
        """Remove one entry from the LRU front and from disk (a caller
        that proved the payload poisoned — e.g. a failed submemo splice
        validation — must be able to force the next read cold)."""
        self._lru.pop(key, None)
        try:
            self._path(key).unlink()
        except OSError:
            pass

    def _drop_corrupt(self, path: Path) -> None:
        self.corrupt += 1
        try:
            path.unlink()
        except OSError:
            pass

    # -- maintenance ----------------------------------------------------

    def iter_files(self):
        """All entry files of this namespace currently on disk.

        Robust against concurrent maintenance: a ``repro cache clear``
        (or an external cleanup) racing this iteration may remove the
        root, a shard or an entry mid-walk — every such disappearance
        is treated as "no entries there", never an exception.  The jobs
        walk only descends into two-hex shard directories, so namespace
        subtrees sharing the root are never double-counted.
        """
        try:
            shards = sorted(self.ns_root.iterdir())
        except (FileNotFoundError, NotADirectoryError):
            return
        for shard in shards:
            if not shard.is_dir() or not _is_shard_dir(shard.name):
                continue
            try:
                entries = sorted(shard.glob("*.json"))
            except OSError:
                continue
            for path in entries:
                yield path

    def disk_stats(self) -> Dict[str, int]:
        """Entry count and total bytes on disk."""
        entries = 0
        size = 0
        for path in self.iter_files():
            entries += 1
            try:
                size += path.stat().st_size
            except OSError:
                pass
        return {"entries": entries, "bytes": size}

    def clear(self, older_than_s: Optional[float] = None) -> int:
        """Delete this namespace's entries on disk; returns the count.

        ``older_than_s`` keeps entries touched within the last that-many
        seconds (mtime-based, so a fresh write or ``os.replace`` refresh
        protects an entry) — the backing of ``repro cache clear
        --older-than``.  An entry whose mtime cannot be read (racing
        delete) is left alone.
        """
        removed = 0
        cutoff = None
        if older_than_s is not None:
            cutoff = time.time() - older_than_s
        for path in list(self.iter_files()):
            if cutoff is not None:
                try:
                    if path.stat().st_mtime >= cutoff:
                        continue
                except OSError:
                    continue
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        # The LRU may hold entries just unlinked; drop it wholesale
        # rather than tracking per-entry ages in memory.
        self._lru.clear()
        return removed

    def counter_stats(self) -> Dict[str, Any]:
        """Session counters and latency percentiles — no disk walk, so
        safe on every ``/metrics`` poll."""
        return {
            "namespace": self.namespace,
            "hits": self.hits, "misses": self.misses,
            "corrupt": self.corrupt, "write_errors": self.write_errors,
            "memory_entries": len(self._lru),
            "hit_latency": _latency_percentiles(self._hit_latency),
            "miss_latency": _latency_percentiles(self._miss_latency),
        }

    def stats(self) -> Dict[str, Any]:
        """Session counters, latency percentiles and on-disk footprint."""
        data = self.disk_stats()
        data.update(self.counter_stats())
        return data
