"""Common decomposition functions for multi-output decomposition.

Following Scholl/Molitor (ASP-DAC'97), the search for shared
decomposition functions is restricted to *strict* functions — functions
constant on each compatible class of the output that uses them.  Under
the paper's side condition ``r_i = ceil(log2(ncc_i))`` we minimise the
size of the union of all outputs' decomposition-function sets with a
greedy reuse heuristic:

1. outputs are processed in order of decreasing ``ncc`` (the hardest
   output seeds the pool);
2. for the current output, already-selected alphas are reused whenever
   they are strict for it *and* keep the encoding feasible (after
   accepting an alpha with ``m`` bits still to assign, no group of
   not-yet-distinguished classes may exceed ``2**m``);
3. missing distinguishing power is supplied by fresh alphas built from
   the within-group class indices; fresh alphas are normalised and
   deduplicated against the pool.

The result is one :class:`~repro.decomp.encoding.OutputEncoding` per
output over a shared alpha list whose length ``r`` satisfies
``max_i r_i <= r <= sum_i r_i`` — with equality at the lower end exactly
when the outputs can share everything.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.bdd.manager import BDD
from repro.decomp.compat import Classes, min_r
from repro.decomp.encoding import AlphaFunction, OutputEncoding, encode_output


def _refine_groups(groups: List[List[int]],
                   class_values: Sequence[int]) -> List[List[int]]:
    """Split each group of class ids by the alpha's class values."""
    refined: List[List[int]] = []
    for group in groups:
        zeros = [c for c in group if class_values[c] == 0]
        ones = [c for c in group if class_values[c] == 1]
        if zeros:
            refined.append(zeros)
        if ones:
            refined.append(ones)
    return refined


def _encode_within_groups(num_vertices: int, classes: Classes,
                          groups: List[List[int]],
                          bits: int) -> List[AlphaFunction]:
    """Fresh alphas giving classes distinct within-group codes.

    Every group has at most ``2**bits`` members, so assigning each class
    its index within its group (in ``bits`` bits) completes the encoding.
    """
    index_of_class: Dict[int, int] = {}
    for group in groups:
        for idx, c in enumerate(group):
            index_of_class[c] = idx
    alphas = []
    for j in range(bits):
        values = [0] * num_vertices
        for c, members in enumerate(classes.classes):
            bit = (index_of_class[c] >> (bits - 1 - j)) & 1
            for v in members:
                values[v] = bit
        alphas.append(AlphaFunction.normalised(values))
    return alphas


def select_common_alphas(bdd: BDD, per_output: Sequence[Classes]
                         ) -> Tuple[List[AlphaFunction],
                                    List[OutputEncoding]]:
    """Choose a shared alpha pool and per-output encodings.

    ``per_output[i]`` holds the (final, post-DC-assignment) compatible
    classes of output ``i``.  Returns the pool and one encoding per
    output, in the original output order.
    """
    if not per_output:
        return [], []
    num_vertices = len(per_output[0].class_of)
    pool: List[AlphaFunction] = []
    encodings: List[OutputEncoding] = [None] * len(per_output)  # type: ignore

    order = sorted(range(len(per_output)),
                   key=lambda i: (-per_output[i].ncc, i))
    for i in order:
        classes = per_output[i]
        r_i = min_r(classes.ncc)
        chosen: List[int] = []
        groups: List[List[int]] = [list(range(classes.ncc))]
        # Reuse pass over the existing pool (earliest first — those are
        # the most shared).
        for idx, alpha in enumerate(pool):
            if len(chosen) == r_i:
                break
            if max(len(g) for g in groups) == 1:
                break
            if not alpha.is_strict_for(classes):
                continue
            refined = _refine_groups(groups, alpha.class_values(classes))
            remaining = r_i - len(chosen) - 1
            if max(len(g) for g in refined) > (1 << remaining):
                continue
            if len(refined) == len(groups):
                continue  # no distinguishing power gained
            chosen.append(idx)
            groups = refined
        # Fresh alphas for what is still ambiguous.  Only as many bits as
        # the largest ambiguous group actually needs (always <= r_i -
        # len(chosen) thanks to the feasibility invariant above).
        max_group = max(len(g) for g in groups)
        if max_group > 1:
            bits = min_r(max_group)
            fresh = _encode_within_groups(num_vertices, classes, groups,
                                          bits)
            for alpha in fresh:
                try:
                    existing = pool.index(alpha)
                except ValueError:
                    pool.append(alpha)
                    existing = len(pool) - 1
                if existing not in chosen:
                    chosen.append(existing)
        try:
            encodings[i] = encode_output(classes, pool, chosen)
        except ValueError:
            # Extremely defensive fallback: a dedup collision made the
            # encoding non-injective.  Use a private plain binary encoding
            # of the class index for this output (no sharing).
            bits = min_r(classes.ncc)
            private = _encode_within_groups(
                num_vertices, classes, [list(range(classes.ncc))], bits)
            chosen = []
            for alpha in private:
                pool.append(alpha)
                chosen.append(len(pool) - 1)
            encodings[i] = encode_output(classes, pool, chosen)
    return pool, encodings


def total_alpha_count(encodings: Sequence[OutputEncoding]) -> int:
    """Size of the union of all outputs' decomposition-function sets."""
    used = set()
    for enc in encodings:
        used.update(enc.alpha_indices)
    return len(used)
