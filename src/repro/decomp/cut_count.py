"""The classic BDD cut-counting method for ``ncc`` (Lai/Pedram/Vrudhula).

The paper (Section 2) notes that the number of compatible classes can be
read off a BDD directly when the bound variables sit *above* the free
variables in the order: ``ncc`` equals the number of distinct
sub-functions rooted strictly below the bound/free cut (the "linking
nodes"), counting the sub-functions reachable by paths that leave the
bound levels.

The decomposition engine itself uses the order-independent cofactor
formulation (:mod:`repro.decomp.compat`), which is equivalent; this
module implements the cut method both as a historical reference and as a
cross-check (the equivalence is asserted by the test suite).
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

from repro.bdd.manager import BDD
from repro.bdd.reorder import rebuild


def cut_nodes(bdd: BDD, f: int, bound: Sequence[int]) -> Set[int]:
    """The linking nodes of ``f`` for the given bound set.

    Requires every bound variable to be ordered above every free
    variable of ``f`` (raises ``ValueError`` otherwise).  Returns the set
    of distinct sub-function nodes hanging below the cut — including
    terminals when a path from the root settles before the cut.
    """
    bound_set = set(bound)
    support = bdd.support(f)
    free = support - bound_set
    if not bound_set or not free:
        raise ValueError("bound and free sets must both be non-empty")
    max_bound_level = max(bdd.var_level(v) for v in bound_set)
    for v in free:
        if bdd.var_level(v) <= max_bound_level:
            raise ValueError(
                "bound variables must be ordered above the free variables")

    linking: Set[int] = set()
    seen: Set[int] = set()
    stack = [f]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        if node <= 1 or bdd.level(node) > max_bound_level:
            linking.add(node)
            continue
        stack.append(bdd.low(node))
        stack.append(bdd.high(node))
    return linking


def ncc_via_cut(bdd: BDD, f: int, bound: Sequence[int]) -> int:
    """``ncc`` through the cut method (same contract as
    :func:`repro.decomp.compat.ncc` for a single complete output)."""
    return len(cut_nodes(bdd, f, bound))


def ncc_with_reorder(bdd: BDD, f: int,
                     bound: Sequence[int]) -> Tuple[int, int]:
    """Cut-method ``ncc`` after moving the bound variables on top.

    Rebuilds the function under a bound-first order (all live nodes of
    the manager other than ``f`` become stale — use on a scratch manager
    or accept the rebuild).  Returns ``(ncc, new_root)``.
    """
    order: List[int] = [v for v in bound]
    order += [v for v in bdd.order() if v not in set(bound)]
    [f2] = rebuild(bdd, [f], order)
    return len(cut_nodes(bdd, f2, bound)), f2
