"""Functional decomposition — the paper's core contribution.

* :mod:`repro.decomp.compat` — compatible classes of bound-set vertices
  (Roth/Karp), for complete functions and for ISFs (clique cover);
* :mod:`repro.decomp.encoding` — class encodings, decomposition functions
  ``alpha`` and composition functions ``g`` with unused-code don't cares;
* :mod:`repro.decomp.multi` — common (strict) decomposition functions for
  multi-output functions (Scholl/Molitor);
* :mod:`repro.decomp.dontcare` — the three-step don't-care assignment;
* :mod:`repro.decomp.bound_set` — bound-set search seeded by symmetry
  groups;
* :mod:`repro.decomp.dsd` — the tier-0 structural pre-pass (disjoint
  support decomposition: dead variables, AND/OR/XOR literal peels, MUX
  splits) that shatters functions before the ncc search;
* :mod:`repro.decomp.recursive` — the recursive drivers ``mulopII``
  (no don't-care exploitation) and ``mulop-dc``.
"""

from repro.decomp.compat import (
    Classes,
    vertex_cofactors,
    compute_classes,
    assign_by_classes,
    ncc,
    min_r,
)
from repro.decomp.encoding import AlphaFunction, OutputEncoding, encode_output
from repro.decomp.multi import select_common_alphas
from repro.decomp.dontcare import (
    assign_step1_symmetry,
    assign_step2_sharing,
    assign_step3_single,
)
from repro.decomp.bound_set import select_bound_set
from repro.decomp.dsd import (
    DsdChain,
    DsdConst,
    DsdCore,
    DsdMux,
    chain_table,
    dsd_enabled,
    shatter,
)
from repro.decomp.recursive import DecompositionEngine, decompose
from repro.decomp.single import SingleDecomposition, decompose_single
from repro.decomp.cover import classes_for_exact
from repro.decomp.cut_count import ncc_via_cut

__all__ = [
    "Classes",
    "vertex_cofactors",
    "compute_classes",
    "assign_by_classes",
    "ncc",
    "min_r",
    "AlphaFunction",
    "OutputEncoding",
    "encode_output",
    "select_common_alphas",
    "assign_step1_symmetry",
    "assign_step2_sharing",
    "assign_step3_single",
    "select_bound_set",
    "DsdChain",
    "DsdConst",
    "DsdCore",
    "DsdMux",
    "chain_table",
    "dsd_enabled",
    "shatter",
    "DecompositionEngine",
    "decompose",
    "SingleDecomposition",
    "decompose_single",
    "classes_for_exact",
    "ncc_via_cut",
]
