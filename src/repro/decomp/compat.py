"""Compatible classes of bound-set vertices (Roth/Karp).

Given a bound set ``B = (x_{i1}, .., x_{ip})``, every *bound-set vertex*
``beta in {0,1}^p`` induces a cofactor ``f|beta`` over the free variables.
Two vertices are *compatible* iff their cofactors admit a common
extension:

* for completely specified functions this is cofactor equality — an
  equivalence relation, classes are groups of identical cofactors;
* for ISFs it is interval intersection — reflexive and symmetric but not
  transitive, so minimising the class count is a minimum clique cover
  problem on the compatibility graph.  We use a deterministic greedy
  first-fit-decreasing cover that grows a clique only while the *running
  interval intersection* stays non-empty (pairwise compatibility does not
  imply a common extension, the running intersection does).

The same machinery serves the single-output case (vectors of length 1)
and the joint multi-output case of paper step 2 (two vertices jointly
compatible iff compatible for *every* output).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.bdd.manager import BDD
from repro.bdd.ops import vertex_bits
from repro.boolfunc.spec import ISF
from repro.obs.profiler import profile_phase

try:
    from repro.kernel.compat import (
        kernel_assign_by_classes,
        kernel_classes_for,
    )
except ImportError:  # pragma: no cover - numpy unavailable
    kernel_assign_by_classes = None
    kernel_classes_for = None


@dataclass
class Classes:
    """A partition of the ``2**p`` bound-set vertices into compatible
    classes, together with the merged cofactor interval of every class.

    ``merged[c][k]`` is the intersection of the cofactor intervals of all
    vertices in class ``c`` for output ``k`` — the interval the
    composition function must realise for code ``c``.
    """

    bound: Tuple[int, ...]
    classes: List[List[int]]
    class_of: List[int]
    merged: List[List[ISF]]

    @property
    def ncc(self) -> int:
        """Number of compatible classes."""
        return len(self.classes)

    @property
    def min_r(self) -> int:
        """Minimum number of decomposition functions:
        ``ceil(log2(ncc))`` (0 for a single class)."""
        return min_r(self.ncc)

    @property
    def num_outputs(self) -> int:
        """Output arity of the merged cofactor vectors."""
        return len(self.merged[0]) if self.merged else 0


class LazyClasses(Classes):
    """A :class:`Classes` whose merged intervals materialise on demand.

    The kernel cover computes ``classes``/``class_of`` from packed
    masks; most callers (the bound-set scoring loops) only read ``ncc``
    and ``min_r``, so the mask-to-BDD conversion of the merged intervals
    is deferred behind a thunk and paid at most once, on first
    ``merged`` access.
    """

    def __init__(self, bound: Tuple[int, ...], classes: List[List[int]],
                 class_of: List[int], thunk) -> None:
        self.bound = bound
        self.classes = classes
        self.class_of = class_of
        self._thunk = thunk
        self._materialised: Optional[List[List[ISF]]] = None

    @property
    def merged(self) -> List[List[ISF]]:
        if self._materialised is None:
            self._materialised = self._thunk()
            self._thunk = None
        return self._materialised


def min_r(num_classes: int) -> int:
    """``ceil(log2(k))`` with ``min_r(1) == 0``."""
    if num_classes < 1:
        raise ValueError("class count must be positive")
    return max(0, math.ceil(math.log2(num_classes)))


def vertex_cofactors(bdd: BDD, outputs: Sequence[ISF],
                     bound: Sequence[int]) -> List[List[ISF]]:
    """Cofactor interval vectors, indexed ``[vertex][output]``.

    Vertex indices follow :func:`repro.bdd.ops.vertex_bits` (MSB first).
    """
    with profile_phase("cofactors"):
        return _vertex_cofactors(bdd, outputs, bound)


def _vertex_cofactors(bdd: BDD, outputs: Sequence[ISF],
                      bound: Sequence[int]) -> List[List[ISF]]:
    per_output: List[List[ISF]] = []
    for isf in outputs:
        los = [isf.lo]
        for var in bound:
            los = [cof for node in los
                   for cof in (bdd.restrict(node, var, 0),
                               bdd.restrict(node, var, 1))]
        if isf.is_complete():
            his = los
        else:
            his = [isf.hi]
            for var in bound:
                his = [cof for node in his
                       for cof in (bdd.restrict(node, var, 0),
                                   bdd.restrict(node, var, 1))]
        per_output.append([ISF(lo, hi) for lo, hi in zip(los, his)])
    num_vertices = 1 << len(bound)
    return [[per_output[k][v] for k in range(len(outputs))]
            for v in range(num_vertices)]


def _vectors_compatible(bdd: BDD, a: Sequence[ISF],
                        b: Sequence[ISF]) -> bool:
    return all(x.compatible(bdd, y) for x, y in zip(a, b))


def _intersect_vectors(bdd: BDD, a: Sequence[ISF],
                       b: Sequence[ISF]) -> Optional[List[ISF]]:
    out = []
    for x, y in zip(a, b):
        z = x.intersect(bdd, y)
        if z is None:
            return None
        out.append(z)
    return out


def compute_classes(bdd: BDD, cofactors: Sequence[Sequence[ISF]],
                    bound: Sequence[int]) -> Classes:
    """Greedy minimum clique cover of the compatibility graph.

    Identical cofactor vectors are always grouped together (they are
    deduplicated first), which guarantees that re-running the computation
    after an :func:`assign_by_classes` narrowing never splits a class —
    the monotonicity the paper's step 2 / step 3 compatibility argument
    needs.
    """
    with profile_phase("clique_cover"):
        return _compute_classes(bdd, cofactors, bound)


def _compute_classes(bdd: BDD, cofactors: Sequence[Sequence[ISF]],
                     bound: Sequence[int]) -> Classes:
    num_vertices = len(cofactors)
    # Deduplicate identical vectors; ISFs are hashable (node-id pairs).
    rep_of: dict = {}
    unique_vectors: List[Tuple[ISF, ...]] = []
    members: List[List[int]] = []
    all_complete = True
    for v, vec in enumerate(cofactors):
        key = tuple(vec)
        if key in rep_of:
            members[rep_of[key]].append(v)
        else:
            rep_of[key] = len(unique_vectors)
            unique_vectors.append(key)
            members.append([v])
            if all_complete and any(i.lo != i.hi for i in vec):
                all_complete = False

    if all_complete:
        # Fast path: for completely specified functions compatibility is
        # equality, so the dedup groups ARE the classes.
        pairs = sorted(zip(members, unique_vectors),
                       key=lambda pair: min(pair[0]))
        classes = [sorted(m) for m, _ in pairs]
        merged = [list(vec) for _, vec in pairs]
        class_of = [0] * num_vertices
        for c, vertices in enumerate(classes):
            for v in vertices:
                class_of[v] = c
        return Classes(tuple(bound), classes, class_of, merged)

    # Seed the cover with the onset-equality groups: vertices whose lo
    # cofactors agree always form a valid clique (the running
    # intersection contains the common lo).  This guarantees the cover
    # never has MORE classes than assigning all don't cares to 0 — the
    # monotonicity that makes mulop-dc dominate mulopII step-wise.
    seed_of: dict = {}
    seed_members: List[List[int]] = []
    seed_intersection: List[List[ISF]] = []
    for i, vec in enumerate(unique_vectors):
        lo_key = tuple(isf.lo for isf in vec)
        s = seed_of.get(lo_key)
        if s is None:
            seed_of[lo_key] = len(seed_members)
            seed_members.append(list(members[i]))
            seed_intersection.append(list(vec))
        else:
            seed_members[s].extend(members[i])
            inter = _intersect_vectors(bdd, seed_intersection[s],
                                       list(vec))
            # Cannot be None: intervals sharing a lo always intersect.
            seed_intersection[s] = inter

    # Greedy merging of the seed cliques (first-fit decreasing by
    # incompatibility degree), each merge guarded by the running
    # intersection staying non-empty.
    n = len(seed_members)
    if n > 1:
        degree = [0] * n
        for i in range(n):
            for j in range(i + 1, n):
                if not _vectors_compatible(bdd, seed_intersection[i],
                                           seed_intersection[j]):
                    degree[i] += 1
                    degree[j] += 1
        order = sorted(range(n), key=lambda i: (-degree[i], i))
    else:
        order = list(range(n))

    clique_members: List[List[int]] = []
    clique_intersection: List[List[ISF]] = []
    for i in order:
        vec = seed_intersection[i]
        placed = False
        for c in range(len(clique_members)):
            merged = _intersect_vectors(bdd, clique_intersection[c], vec)
            if merged is not None:
                clique_members[c].extend(seed_members[i])
                clique_intersection[c] = merged
                placed = True
                break
        if not placed:
            clique_members.append(list(seed_members[i]))
            clique_intersection.append(list(vec))

    # Deterministic class numbering: by smallest vertex index.
    pairs = sorted(zip(clique_members, clique_intersection),
                   key=lambda pair: min(pair[0]))
    classes = [sorted(m) for m, _ in pairs]
    merged = [inter for _, inter in pairs]
    class_of = [0] * num_vertices
    for c, vertices in enumerate(classes):
        for v in vertices:
            class_of[v] = c
    return Classes(tuple(bound), classes, class_of, merged)


def classes_for(bdd: BDD, outputs: Sequence[ISF],
                bound: Sequence[int]) -> Classes:
    """Convenience: cofactors + clique cover in one call.

    Served by the word-parallel kernel when the live support fits its
    cap (see :mod:`repro.kernel`); the result is bit-identical to the
    BDD path either way.
    """
    if kernel_classes_for is not None:
        hit = kernel_classes_for(bdd, outputs, bound)
        if hit is not None:
            bound_t, classes, class_of, thunk = hit
            return LazyClasses(bound_t, classes, class_of, thunk)
    return compute_classes(bdd, vertex_cofactors(bdd, outputs, bound), bound)


def ncc(bdd: BDD, outputs: Sequence[ISF], bound: Sequence[int]) -> int:
    """Number of compatible classes of (the joint function of) ``outputs``
    w.r.t. ``bound``."""
    return classes_for(bdd, outputs, bound).ncc


def assign_by_classes(bdd: BDD, outputs: Sequence[ISF],
                      classes: Classes) -> List[ISF]:
    """Assign don't cares so every vertex takes its class's merged interval.

    This is a pure narrowing (the intersection refines each member), so it
    only ever *assigns* don't cares; care values are untouched.  Used by
    paper steps 2 (with joint classes) and 3 (with per-output classes).

    Completely specified outputs are returned as-is (the narrowing is the
    identity there) — an important fast path, since the recursion's top
    levels are complete.
    """
    if all(isf.is_complete() for isf in outputs):
        return list(outputs)
    if kernel_assign_by_classes is not None:
        hit = kernel_assign_by_classes(bdd, outputs, classes)
        if hit is not None:
            return hit
    p = len(classes.bound)
    new_outputs = []
    for k in range(len(outputs)):
        lo = BDD.FALSE
        hi = BDD.FALSE
        for c, vertices in enumerate(classes.classes):
            merged = classes.merged[c][k]
            for v in vertices:
                bits = vertex_bits(v, p)
                cube = bdd.cube(dict(zip(classes.bound, bits)))
                lo = bdd.apply_or(lo, bdd.apply_and(cube, merged.lo))
                hi = bdd.apply_or(hi, bdd.apply_and(cube, merged.hi))
        new_outputs.append(ISF.create(bdd, lo, hi))
    return new_outputs
