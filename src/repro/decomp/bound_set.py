"""Bound-set selection.

The paper seeds the search with symmetric sifting — symmetric variables
end up adjacent — and then examines candidate bound sets obtained by
exchanging groups of symmetric variables.  We reproduce that strategy
order-free: variables are laid out group-contiguously (largest common
symmetry group first), candidates are sliding windows of size ``p`` over
that layout plus group-aligned combinations, and each candidate is scored
by the quantities the paper minimises:

1. the total number of decomposition functions ``sum_i r_i`` (after
   sharing it can only shrink, so this is the primary cost);
2. the joint lower bound ``ceil(log2(ncc_joint))`` (sharing potential);
3. the joint ``ncc`` itself as a tie breaker.

Only *support-reducing* candidates (``r_total < p``) make the recursion
shrink; the driver falls back to a Shannon step when none exists.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.bdd.manager import BDD
from repro.boolfunc.spec import ISF
from repro.decomp.compat import classes_for, min_r
from repro.kernel import STATS as KERNEL_STATS

try:
    from repro.kernel.compat import kernel_reduction_score
    from repro.kernel.convert import TableMismatchError
    from repro.kernel.refine import PartitionCache
except ImportError:  # pragma: no cover - numpy unavailable
    kernel_reduction_score = None
    PartitionCache = None

    class TableMismatchError(Exception):
        """Placeholder so except-clauses stay valid without numpy."""


def candidate_bound_sets(variables: Sequence[int], p: int,
                         groups: Optional[Sequence[Sequence[int]]] = None,
                         max_candidates: int = 24) -> List[Tuple[int, ...]]:
    """Candidate bound sets of size ``p`` (deduplicated, ordered).

    With symmetry groups given, the layout is group-contiguous and whole
    groups are preferred window anchors; without groups, plain sliding
    windows over the variable list are used.
    """
    variables = list(variables)
    if p >= len(variables):
        raise ValueError("bound set must be a strict subset of the support")
    layout: List[int] = []
    if groups:
        # Single seen-set pass: a variable in two groups lands once (at
        # its first, largest group) and the dedup is linear, not the
        # old per-element set(layout)/set(variables) rebuild.
        placed: Set[int] = set(variables)
        order = sorted((g for g in groups if g), key=len, reverse=True)
        for g in order:
            for v in g:
                if v in placed:
                    placed.discard(v)
                    layout.append(v)
        for v in variables:
            if v in placed:
                placed.discard(v)
                layout.append(v)
    else:
        layout = variables

    seen = set()
    candidates: List[Tuple[int, ...]] = []

    def add(cand: Sequence[int]) -> None:
        key = tuple(sorted(cand))
        if len(key) == p and key not in seen:
            seen.add(key)
            candidates.append(key)

    # Sliding windows over the layout.
    for start in range(len(layout) - p + 1):
        add(layout[start:start + p])
        if len(candidates) >= max_candidates:
            return candidates
    # Group-aligned combinations: fill a window with whole groups first.
    if groups:
        layout_set = set(layout)
        order = sorted((list(g) for g in groups if g), key=len, reverse=True)
        for i, g in enumerate(order):
            cand: List[int] = []
            for h in order[i:] + order[:i]:
                for v in h:
                    if len(cand) < p and v in layout_set:
                        cand.append(v)
            if len(cand) == p:
                add(cand)
            if len(candidates) >= max_candidates:
                return candidates
    # A few stride-2 windows for diversity.
    for start in range(0, len(layout) - 2 * p + 2, 2):
        add(layout[start:start + 2 * p:2])
        if len(candidates) >= max_candidates:
            break
    return candidates


def score_bound_set(bdd: BDD, outputs: Sequence[ISF],
                    bound: Sequence[int]) -> Tuple[int, int, int]:
    """Score tuple (lower is better): ``(sum_i r_i, joint min_r, joint ncc)``."""
    joint = classes_for(bdd, outputs, bound)
    total_r = 0
    for isf in outputs:
        total_r += classes_for(bdd, [isf], bound).min_r
    return (total_r, joint.min_r, joint.ncc)


def reduction_score(bdd: BDD, outputs: Sequence[ISF],
                    bound: Sequence[int]) -> Tuple[int, int, int]:
    """Ranking score (lower is better).

    The first component is the *negated total support reduction*
    ``-sum_i max(0, |S_i intersect B| - r_i)`` — the number of inputs the
    step removes across all outputs under the paper's per-output
    ``r_i = ceil(log2 ncc_i)`` rule; ties break on the joint lower bound
    (more sharing potential) and the joint ``ncc``.

    This is the hottest scoring path of the ranking; when the live
    support fits, the kernel computes the class *counts* without
    materialising a single BDD node.
    """
    if kernel_reduction_score is not None:
        hit = kernel_reduction_score(bdd, outputs, bound)
        if hit is not None:
            return hit
    from repro.decomp.compat import compute_classes, vertex_cofactors
    vectors = vertex_cofactors(bdd, outputs, bound)
    bound_set = set(bound)
    reduction = 0
    for k, isf in enumerate(outputs):
        inter = len(isf.support(bdd) & bound_set)
        if inter == 0:
            continue
        column = [[vec[k]] for vec in vectors]
        r_i = compute_classes(bdd, column, bound).min_r
        reduction += max(0, inter - r_i)
    joint = compute_classes(bdd, vectors, bound)
    return (-reduction, joint.min_r, joint.ncc)


def greedy_bound_set(bdd: BDD, outputs: Sequence[ISF],
                     variables: Sequence[int], p: int,
                     pool_cap: int = 26) -> Optional[Tuple[int, ...]]:
    """Grow a bound set greedily by joint ``ncc``.

    Starting from the empty set, each round adds the variable that keeps
    the joint class count smallest.  This discovers *algebraic* structure
    plain windows miss — e.g. for parity-dominated circuits (C499-style)
    it collects variables whose contribution patterns are linearly
    dependent, where ``ncc`` stays at ``2^rank`` instead of ``2^p``.

    When the kernel serves the support, each candidate ``B ∪ {v}`` is
    scored by *one* partition refinement of the cached partition of the
    current ``B`` (see :mod:`repro.kernel.refine`) instead of a full
    ``classes_for`` recomputation — identical ``ncc``, so the grown set
    is bit-identical either way.
    """
    variables = list(variables)
    if p >= len(variables):
        return None
    if len(variables) > pool_cap:
        # Deterministic thinning: keep an evenly spaced subsample.
        step = len(variables) / pool_cap
        variables = [variables[int(i * step)] for i in range(pool_cap)]
    # Wide bundles: grow against a sample of the outputs (structure like
    # linear dependence shows up in any few outputs; the full bundle is
    # only consulted by the caller's scoring).
    if len(outputs) > 8:
        outputs = list(outputs)[:8]
    cache = None
    if PartitionCache is not None:
        cache = PartitionCache.for_call(bdd, outputs, variables,
                                        "classes_for")
    current: List[int] = []
    for _ in range(p):
        best_var = None
        best_key = None
        for var in variables:
            if var in current:
                continue
            cand = current + [var]
            if cache is not None:
                try:
                    ncc = cache.ncc_for(tuple(cand))
                except TableMismatchError:
                    # Stale/shrunk ordering behind the cache: degrade to
                    # the BDD route for the rest of the growth.
                    KERNEL_STATS.record_miss("classes_for")
                    cache = None
            if cache is None:
                KERNEL_STATS.record_scratch()
                ncc = classes_for(bdd, outputs, cand).ncc
            key = (ncc, var)
            if best_key is None or key < best_key:
                best_key = key
                best_var = var
        if best_var is None:
            return None
        current.append(best_var)
    return tuple(sorted(current))


def rank_bound_sets(bdd: BDD, outputs: Sequence[ISF],
                    variables: Sequence[int], p: int,
                    groups: Optional[Sequence[Sequence[int]]] = None,
                    max_candidates: int = 24,
                    score_memo: Optional[Dict] = None,
                    memo_key: Optional[Tuple] = None
                    ) -> List[Tuple[Tuple[int, ...], Tuple[int, int, int]]]:
    """Candidates with positive total support reduction, best first.

    Window/group candidates are augmented with one greedily grown
    candidate (see :func:`greedy_bound_set`).  The driver still verifies
    the actual per-output reductions after the don't-care steps and moves
    down the list when a candidate falls short.

    Candidates are sorted tuples, so when the kernel serves the support
    they are scored through one :class:`repro.kernel.refine.PartitionCache`
    — overlapping windows extend each other's longest shared sorted
    prefix instead of recomputing from scratch.  ``score_memo`` (keyed
    by ``(memo_key, candidate)``) lets the engine reuse scores across
    repeated rankings of the same outputs within one run.
    """
    candidates = candidate_bound_sets(variables, p, groups, max_candidates)
    greedy = greedy_bound_set(bdd, outputs, variables, p)
    if greedy is not None and greedy not in candidates:
        candidates.insert(0, greedy)
    cache = None
    need_scores = score_memo is None or any(
        (memo_key, cand) not in score_memo for cand in candidates)
    if PartitionCache is not None and need_scores:
        cache = PartitionCache.for_call(bdd, outputs, variables,
                                        "reduction_score")
    ranked = []
    for cand in candidates:
        full_key = (memo_key, cand)
        if score_memo is not None and full_key in score_memo:
            score = score_memo[full_key]
        else:
            score = None
            if cache is not None:
                try:
                    score = cache.score_for(cand)
                except TableMismatchError:
                    KERNEL_STATS.record_miss("reduction_score")
                    cache = None
            if score is None:
                if cache is None:
                    KERNEL_STATS.record_scratch()
                score = reduction_score(bdd, outputs, cand)
        if score_memo is not None:
            score_memo[full_key] = score
        if score[0] >= 0:
            continue  # removes nothing
        ranked.append((cand, score))
    ranked.sort(key=lambda item: item[1])
    return ranked


def select_bound_set(bdd: BDD, outputs: Sequence[ISF],
                     variables: Sequence[int], p: int,
                     groups: Optional[Sequence[Sequence[int]]] = None,
                     max_candidates: int = 24
                     ) -> Tuple[Optional[Tuple[int, ...]],
                                Optional[Tuple[int, int, int]]]:
    """Pick the best *certainly* support-reducing bound set of size ``p``.

    Returns ``(bound, score)``; ``bound`` is None when no candidate has
    ``sum_i r_i < p`` — callers wanting to gamble on sharing should use
    :func:`rank_bound_sets` instead.
    """
    best: Optional[Tuple[int, ...]] = None
    best_score: Optional[Tuple[int, int, int]] = None
    for cand in candidate_bound_sets(variables, p, groups, max_candidates):
        score = score_bound_set(bdd, outputs, cand)
        if score[0] >= p:
            continue  # not support-reducing
        if best_score is None or score < best_score:
            best, best_score = cand, score
    return best, best_score
