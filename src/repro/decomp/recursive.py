"""The recursive multi-output decomposition drivers.

:class:`DecompositionEngine` implements both algorithms compared in the
paper's Table 1:

* ``mulopII`` — no don't-care exploitation: at every recursion level each
  output is completed by assigning all don't cares to 0 (the paper's
  footnote), then decomposed with common decomposition functions;
* ``mulop-dc`` — the paper's contribution: the three-step don't-care
  assignment (symmetry, sharing, single-output) runs before the classes
  are encoded.

A decomposition step w.r.t. a bound set ``B`` (``|B| = p <= n_LUT``)
replaces each decomposable output by its composition function over the
shared decomposition functions ``alpha`` (realised as ``p``-input LUTs)
and the free variables.  Following the paper, every output uses the
*minimum* number of decomposition functions
``r_i = ceil(log2 ncc_i)``; an output joins the step only when that
strictly shrinks its support (``r_i < |S_i intersect B|``) — other
outputs ride along unchanged and are reconsidered at the next level.
The union of all alphas is minimised by the common-function selection.
When no candidate bound set helps any output, a Shannon step (3-input
MUX) guarantees termination.
"""

from __future__ import annotations

import os
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro import faults
from repro.bdd.manager import BDD
from repro.boolfunc.spec import ISF, MultiFunction
from repro.decomp.bound_set import rank_bound_sets
from repro.decomp.compat import classes_for
from repro.decomp.dontcare import (
    assign_step1_symmetry,
    assign_step2_sharing,
    assign_step3_single,
)
from repro.decomp.dsd import (
    DsdChain,
    DsdConst,
    DsdCore,
    DsdMux,
    chain_table,
    dsd_enabled,
    shatter,
)
from repro.decomp import submemo
from repro.decomp.encoding import build_composition_for_output, sub_isf_key
from repro.decomp.multi import select_common_alphas
from repro.kernel import STATS as KERNEL_STATS
from repro.kernel import kernel_metrics, reset_kernel_stats
from repro.mapping.lutnet import CONST0, CONST1, LutNetwork
from repro.obs.metrics import BddMetrics
from repro.obs.profiler import PhaseProfiler, activate_profiler, profile_phase
from repro.symmetry.groups import symmetry_domain

#: Exception classes a single output may fail with and still leave the
#: rest of the bundle salvageable: recursion blow-ups, memory
#: exhaustion, and injected chaos faults.  Anything else is a bug and
#: propagates.
QUARANTINABLE = (RecursionError, MemoryError, faults.FaultInjected)

#: Environment override for the engine's recursion-limit raise.
RECURSION_LIMIT_ENV = "REPRO_RECURSION_LIMIT"

#: ``base + per_var * n`` recursion frames requested at engine entry.
_RECURSION_BASE = 3000
_RECURSION_PER_VAR = 200

#: Fault sites that fire *inside* the engine's search: with one of
#: these armed the sub-ISF memo must stand down, because splicing skips
#: work and would shift the deterministic nth-fire schedules the chaos
#: tests rely on.  Cache-layer sites are deliberately absent — corrupt
#: submemo reads degrading to a cold search is itself a tested scenario.
_SUBMEMO_FAULT_SITES = frozenset(
    {"worker.mid_decomp", "bdd.ite", "kernel.dispatch"})

#: Score-memo bounds, mirroring the kernel convert caches' policy
#: (clear wholesale on entry-count or byte overflow, count the
#: eviction): entries are ``((outputs, p), candidate) -> score`` tuples.
_SCORE_MEMO_LIMIT = 50000
_SCORE_MEMO_BYTES = 32 * 1024 * 1024


class _RecFrame:
    """One active sub-ISF recording: the ``add_lut`` tape of a bundle.

    ``sig_ref`` maps every signal reachable from inside the bundle to
    its position-relative reference (input rank, constant, or earlier
    tape entry).  A fanin outside that map means the call depends on
    context the memo cannot carry (a cross-subtree structural-hash hit)
    — the frame dies and nothing is stored.
    """

    __slots__ = ("key", "support", "sig_ref", "tape", "dead", "depth0",
                 "reach", "stats0")

    def __init__(self, key: str, support, sig_ref, depth: int,
                 stats0) -> None:
        self.key = key
        self.support = support
        self.sig_ref = sig_ref
        self.tape: List[Tuple[List[int], str, Optional[str]]] = []
        self.dead = False
        self.depth0 = depth
        self.reach = depth
        self.stats0 = stats0


def _required_recursion_limit(num_vars: int) -> int:
    """Recursion headroom for a function of ``num_vars`` inputs.

    The engine recurses once per Shannon split in the worst case, and
    each engine level sits on a deep stack of BDD-walk frames, so the
    need grows with the variable count.  ``REPRO_RECURSION_LIMIT``
    overrides the heuristic outright.
    """
    env = os.environ.get(RECURSION_LIMIT_ENV)
    if env:
        return max(1000, int(env))
    return _RECURSION_BASE + _RECURSION_PER_VAR * num_vars


@dataclass
class StepRecord:
    """One accepted decomposition step, for tracing/reporting."""

    depth: int
    bound: Tuple[int, ...]
    num_outputs: int
    included: int
    alphas_used: int
    sum_r: int
    joint_min_r: int


@dataclass
class DecompositionStats:
    """Counters collected across one driver run."""

    decomposition_steps: int = 0
    shannon_steps: int = 0
    alphas_created: int = 0
    alphas_shared: int = 0          # sum over steps of (sum r_i - r_union)
    joint_lower_bounds: List[int] = field(default_factory=list)
    max_recursion_depth: int = 0
    #: True when the wall-clock budget expired and part of the network
    #: came from the fast BDD/MUX fallback.
    budget_exhausted: bool = False
    #: Per-step trace (bound set, sharing, ...), in acceptance order.
    steps: List[StepRecord] = field(default_factory=list)
    #: Exclusive wall-clock seconds per engine phase (see repro.obs).
    phase_times: Dict[str, float] = field(default_factory=dict)
    #: Entry counts per engine phase.
    phase_counts: Dict[str, int] = field(default_factory=dict)
    #: BDD manager counter snapshot taken when the run finished.
    bdd_metrics: Optional[BddMetrics] = None
    #: Word-parallel kernel dispatch snapshot (see repro.kernel).
    kernel_metrics: Optional[Dict] = None
    #: Times the exact clique cover hit its node budget and silently
    #: degraded to the greedy cover (repro.decomp.cover).
    exact_cover_fallbacks: int = 0
    #: Output names that failed the joint decomposition with a
    #: containable error (RecursionError/MemoryError/injected fault) and
    #: were realised by the verified MUX fallback instead.
    quarantined_outputs: List[str] = field(default_factory=list)
    #: ``{output name: "ErrorType: message"}`` for quarantined outputs.
    quarantine_errors: Dict[str, str] = field(default_factory=dict)
    #: Injected-fault fires observed during this run (``{"site:kind":
    #: count}`` delta; None when no faults are armed).
    fault_metrics: Optional[Dict[str, int]] = None
    #: Tier-0 DSD pre-pass counters: ``probes``, ``shattered``,
    #: ``and_peels``/``or_peels``/``xor_peels``, ``mux_splits``,
    #: ``dead_vars``, ``const_leaves``, ``cores``, ``chain_luts``.
    dsd: Dict[str, int] = field(default_factory=dict)
    #: Sub-ISF computed-table counters for this run (``run_hits``,
    #: ``store_hits``, ``misses``, ``splices``, ``spliced_luts``,
    #: ``stores``, ``store_bytes``, ``unportable``, ``verify_rejects``,
    #: ``invalid_payloads``, ``run_evictions``) — empty when the memo
    #: was inactive (see :mod:`repro.decomp.submemo`).
    submemo: Dict[str, int] = field(default_factory=dict)
    #: Times the bound-set score memo overflowed its entry/byte budget
    #: and was cleared wholesale (the convert-cache policy).
    score_memo_evictions: int = 0

    def phase_profile(self) -> Dict[str, Dict[str, float]]:
        """``{phase: {"time_s": ..., "calls": ...}}`` for this run."""
        return {name: {"time_s": self.phase_times[name],
                       "calls": self.phase_counts.get(name, 0)}
                for name in self.phase_times}

    def report(self) -> str:
        """Multi-line human-readable trace of the run."""
        lines = [
            f"decomposition steps : {self.decomposition_steps}",
            f"Shannon fallbacks   : {self.shannon_steps}",
            f"alphas created      : {self.alphas_created}"
            f" (sharing saved {self.alphas_shared})",
            f"max recursion depth : {self.max_recursion_depth}",
        ]
        for name, secs in sorted(self.phase_times.items(),
                                 key=lambda kv: -kv[1]):
            lines.append(f"  phase {name:<20s}: {secs:.4f} s "
                         f"x{self.phase_counts.get(name, 0)}")
        if self.dsd:
            parts = ", ".join(f"{key}={value}"
                              for key, value in sorted(self.dsd.items()))
            lines.append(f"dsd pre-pass        : {parts}")
        if self.submemo:
            parts = ", ".join(f"{key}={value}"
                              for key, value in sorted(
                                  self.submemo.items()))
            lines.append(f"sub-ISF memo        : {parts}")
        if self.score_memo_evictions:
            lines.append(f"score memo evictions: "
                         f"{self.score_memo_evictions}")
        if self.budget_exhausted:
            lines.append("budget exhausted    : yes (MUX fallback used)")
        if self.quarantined_outputs:
            lines.append(
                f"quarantined outputs : "
                f"{', '.join(self.quarantined_outputs)}")
            for name, error in sorted(self.quarantine_errors.items()):
                lines.append(f"  quarantine {name:<12s}: {error}")
        if self.fault_metrics:
            for key, count in sorted(self.fault_metrics.items()):
                lines.append(f"  fault {key:<20s}: fired x{count}")
        for i, s in enumerate(self.steps):
            lines.append(
                f"  step {i:3d} depth={s.depth} bound={s.bound} "
                f"outputs={s.included}/{s.num_outputs} "
                f"alphas={s.alphas_used} (sum r_i={s.sum_r}, "
                f"joint bound={s.joint_min_r})")
        return "\n".join(lines)


@dataclass
class _Step:
    """An accepted decomposition step."""

    bound: Tuple[int, ...]
    pool: list
    encodings: list
    included: Set[int]
    joint_min_r: int
    gain: int = 0


class DecompositionEngine:
    """Configurable recursive decomposer.

    Parameters
    ----------
    n_lut:
        LUT input count of the target architecture (5 for XC3000).
    use_dontcares:
        ``False`` reproduces ``mulopII`` (don't cares -> 0 each level);
        ``True`` enables the three-step assignment (``mulop-dc``).
    use_symmetry_step / use_sharing_step / use_single_step:
        Individual toggles for the three steps (for the ablation bench).
    max_candidates / try_candidates:
        Width of the bound-set search and how many ranked candidates may
        be fully evaluated per step.
    balanced:
        Use balanced bound sets (``p ~ |support| / 2``, capped at
        ``balanced_max_p``) in the style of the communication-based
        multilevel synthesis the paper builds on [11, 21]; decomposition
        functions wider than ``n_lut`` are decomposed recursively as a
        multi-output bundle.  This is the mode behind the paper's
        two-input-gate results (Figures 2 and 3).
    time_budget:
        Optional wall-clock budget in seconds.  When exceeded, the
        remaining work is finished with a fast BDD/MUX mapping instead
        of the full search (quality degrades gracefully, runtime stays
        bounded — an engineering concession of the pure-Python
        reproduction; the 1997 C implementation needed no such budget).
    node_budget:
        Optional cap on the BDD manager's node count with the same
        fallback — bounds memory the way ``time_budget`` bounds time.
    use_dsd:
        Tier-0 structural pre-pass (see :mod:`repro.decomp.dsd`):
        ``None`` follows the ``REPRO_DSD`` environment switch (default
        on), ``True``/``False`` force it for this engine.
    use_submemo:
        Sub-ISF computed table (see :mod:`repro.decomp.submemo`):
        ``None`` follows ``REPRO_SUBMEMO`` (default on), ``True``/
        ``False`` force it.  Regardless of the flag the memo stands
        down when a wall/node budget is set (budget crossings make the
        search trajectory time-dependent) or when an engine-internal
        fault site is armed.
    submemo_store:
        Override for the process-level store layers (tests); default is
        :func:`repro.decomp.submemo.default_store`.
    """

    def __init__(self, n_lut: int = 5, use_dontcares: bool = True,
                 use_symmetry_step: bool = True,
                 use_sharing_step: bool = True,
                 use_single_step: bool = True,
                 max_candidates: int = 24,
                 try_candidates: int = 6,
                 balanced: bool = False,
                 balanced_max_p: int = 8,
                 time_budget: Optional[float] = None,
                 node_budget: Optional[int] = None,
                 use_dsd: Optional[bool] = None,
                 use_submemo: Optional[bool] = None,
                 submemo_store: Optional[submemo.SubMemoStore] = None
                 ) -> None:
        if n_lut < 2:
            raise ValueError("n_lut must be at least 2")
        self.n_lut = n_lut
        self.use_dontcares = use_dontcares
        self.use_symmetry_step = use_symmetry_step and use_dontcares
        self.use_sharing_step = use_sharing_step and use_dontcares
        self.use_single_step = use_single_step and use_dontcares
        self.max_candidates = max_candidates
        self.try_candidates = try_candidates
        self.balanced = balanced
        self.balanced_max_p = balanced_max_p
        self.time_budget = time_budget
        self.node_budget = node_budget
        self.use_dsd = use_dsd
        self._dsd_active = False
        self.use_submemo = use_submemo
        self._submemo_store_override = submemo_store
        self.reset()

    def reset(self) -> None:
        """Clear every piece of per-run state.

        One engine instance may decompose several ``MultiFunction``\\ s
        (possibly living in different BDD managers); all of the memos
        below key on node ids or reference signals of the previous run's
        network, so carrying any of them across runs silently corrupts
        the next result.  :meth:`run` calls this at entry.
        """
        self.stats = DecompositionStats()
        self.profiler = PhaseProfiler()
        # Shannon-cooldown heuristic state: stale True would give the
        # next run's first Shannon children an unearned search cooldown.
        self._last_rank_empty = False
        self._deadline: Optional[float] = None
        self._fault_mid: Optional[callable] = None
        self._mux_memo: Dict[int, str] = {}
        #: Bound-set score memo shared across the recursion: sibling
        #: branches re-rank identical (outputs, p) queries after a
        #: Shannon split or shared-step regrouping; keyed by the
        #: ranking view's (lo, hi) node pairs the scores are exact.
        self._score_memo: Dict = {}
        #: Intervals the DSD probe already found irreducible (per run —
        #: keys are node-id pairs).
        self._dsd_irreducible: Set[Tuple[int, int]] = set()
        self._dsd_counter = 0
        #: Estimated bytes held by ``_score_memo`` (entries are keyed
        #: by node-id tuples, so like every memo here it is per-run).
        self._score_memo_bytes = 0
        # -- sub-ISF computed table (per-run layer; see submemo.py) ----
        self._submemo_active = False
        self._submemo_cfg = ""
        self._submemo_store: Optional[submemo.SubMemoStore] = None
        #: L1: canonical key -> payload, insertion order == LRU order.
        self._submemo_run: "Dict[str, Dict]" = {}
        self._submemo_run_bytes = 0
        #: Per-run canonicalization cache: node-id/cooldown tuple ->
        #: canonical key (bounds the key-walk overhead on repeats).
        self._submemo_keys: Dict[Tuple, str] = {}
        #: Stack of active recording frames (strictly nested).
        self._rec_frames: List[_RecFrame] = []
        self._submemo_counters: Dict[str, int] = {}

    # ------------------------------------------------------------------

    def run(self, func: MultiFunction) -> LutNetwork:
        """Decompose ``func`` into a LUT network with ``n_lut``-input LUTs.

        Containment contract: a :data:`QUARANTINABLE` failure (recursion
        blow-up, memory exhaustion, injected chaos fault) during the
        joint decomposition triggers a per-output rerun; outputs that
        fail *individually* are quarantined to the verified MUX fallback
        while the rest still get the full search.  Quarantined outputs
        are listed in ``stats.quarantined_outputs`` and their cones are
        re-verified against the specification before the run returns.
        """
        self.reset()
        self._dsd_active = dsd_enabled() if self.use_dsd is None \
            else bool(self.use_dsd)
        reset_kernel_stats()
        self._fault_mid = faults.hook("worker.mid_decomp")
        self._submemo_setup()
        fault_baseline = faults.counters()
        self._deadline = (time.monotonic() + self.time_budget
                          if self.time_budget is not None else None)
        named = list(zip(func.output_names, func.outputs))
        # The recursion depth scales with the variable count (Shannon
        # chains with BDD-walk frames below each level); raise the limit
        # proportionally so wide functions do not die on the default.
        old_limit = sys.getrecursionlimit()
        needed = _required_recursion_limit(len(func.inputs))
        if needed > old_limit:
            sys.setrecursionlimit(needed)
        try:
            try:
                net, signal_of = self._fresh_net(func)
                with activate_profiler(self.profiler):
                    signals = self._decompose(func.bdd, named, net,
                                              signal_of, depth=0)
            except QUARANTINABLE as exc:
                net, signals = self._quarantine_rerun(func, named, exc)
            for name, _ in named:
                net.set_output(name, signals[name])
            if self.stats.quarantined_outputs:
                net.sweep()  # shed partial nodes of aborted attempts
                self._verify_quarantined(func, net)
        finally:
            if needed > old_limit:
                sys.setrecursionlimit(old_limit)
        self.stats.phase_times = dict(self.profiler.times)
        self.stats.phase_counts = dict(self.profiler.counts)
        self.stats.bdd_metrics = func.bdd.metrics()
        self.stats.kernel_metrics = kernel_metrics()
        self.stats.exact_cover_fallbacks = \
            self.profiler.events.get("exact_cover_fallback", 0)
        fired = faults.counters()
        delta = {key: count - fault_baseline.get(key, 0)
                 for key, count in fired.items()
                 if count - fault_baseline.get(key, 0) > 0}
        self.stats.fault_metrics = delta or None
        if self._submemo_active:
            self.stats.submemo = dict(self._submemo_counters)
            if self._submemo_store is not None:
                # One-shot workers exit right after the payload ships;
                # write-behind remote entries must be flushed first.
                self._submemo_store.flush()
        return net

    def _fresh_net(self, func: MultiFunction
                   ) -> Tuple[LutNetwork, Dict[int, str]]:
        """A new network with the function's primary inputs declared."""
        net = LutNetwork()
        signal_of: Dict[int, str] = {}
        for var, name in zip(func.inputs, func.input_names):
            net.add_input(name)
            signal_of[var] = name
        return net, signal_of

    def _quarantine_rerun(self, func: MultiFunction,
                          named: List[Tuple[str, ISF]],
                          cause: BaseException
                          ) -> Tuple[LutNetwork, Dict[str, str]]:
        """Per-output salvage after a containable joint-run failure.

        The partial network of the failed joint attempt is discarded
        (its memoised signal names would dangle); every output is then
        decomposed on its own, and an output that *still* fails is
        quarantined: realised by the MUX fallback (under fault
        suppression — the fallback is recovery code and must complete)
        and recorded in the stats.
        """
        self.profiler.event("quarantine_rerun")
        bdd = func.bdd
        net, signal_of = self._fresh_net(func)
        self._mux_memo = {}
        self._rec_frames = []  # unwound by the abort path; be safe
        signals: Dict[str, str] = {}
        for name, isf in named:
            try:
                self._fault_mid = faults.hook("worker.mid_decomp")
                with activate_profiler(self.profiler):
                    part = self._decompose(bdd, [(name, isf)], net,
                                           signal_of, depth=0)
                signals[name] = part[name]
            except QUARANTINABLE as exc:
                self.stats.quarantined_outputs.append(name)
                self.stats.quarantine_errors[name] = \
                    f"{type(exc).__name__}: {exc}"
                # Recovery path: the MUX walk is bounded by BDD size and
                # must not be re-failed by the same armed fault.
                with faults.suppressed():
                    self._fault_mid = None
                    f = self._choose_extension(bdd, isf)
                    signals[name] = self._mux_map(bdd, f, net, signal_of)
        if not self.stats.quarantined_outputs:
            # The per-output rerun succeeded everywhere — the original
            # failure was a bundle-level artefact (e.g. a joint
            # recursion blow-up).  Record the cause against every
            # output for observability, but nothing was degraded.
            self.profiler.event("quarantine_rerun_clean")
        return net, signals

    def _verify_quarantined(self, func: MultiFunction,
                            net: LutNetwork) -> None:
        """Check every quarantined cone realises an extension of its ISF.

        A quarantined output bypassed parts of the normal pipeline, so
        its (cheap, MUX-built) cone is re-verified unconditionally; a
        mismatch here is a real bug and raises instead of shipping a
        wrong network with an "ok"-looking record.
        """
        from repro.verify.equiv import lut_network_bdds
        with faults.suppressed(), profile_phase("quarantine_verify"):
            bdd = func.bdd
            input_vars = dict(zip(func.input_names, func.inputs))
            impl = lut_network_bdds(net, bdd, input_vars)
            spec_of = dict(zip(func.output_names, func.outputs))
            for name in self.stats.quarantined_outputs:
                g = impl[name]
                isf = spec_of[name]
                if (bdd.apply_diff(isf.lo, g) != BDD.FALSE
                        or bdd.apply_diff(g, isf.hi) != BDD.FALSE):
                    raise RuntimeError(
                        f"quarantined output {name!r} failed extension "
                        f"verification after MUX fallback "
                        f"(cause: {self.stats.quarantine_errors[name]})")

    # ------------------------------------------------------------------

    def _choose_extension(self, bdd: BDD, isf: ISF) -> int:
        """Completion heuristic for a leaf LUT: the smaller interval end."""
        if isf.is_complete():
            return isf.lo
        if bdd.node_count(isf.hi) < bdd.node_count(isf.lo):
            return isf.hi
        return isf.lo

    def _emit_leaf(self, bdd: BDD, isf: ISF, net: LutNetwork,
                   signal_of: Dict[int, str]) -> str:
        """Realise a function whose support fits one LUT."""
        f = self._choose_extension(bdd, isf)
        support = sorted(bdd.support(f))
        if not support:
            return CONST1 if f == BDD.TRUE else CONST0
        table = bdd.to_truth_table(f, support)
        return self._add_lut(net, [signal_of[v] for v in support],
                             table)

    # -- tier-0 DSD pre-pass -------------------------------------------

    def _dsd_bump(self, key: str, n: int = 1) -> None:
        self.stats.dsd[key] = self.stats.dsd.get(key, 0) + n

    def _dsd_probe(self, bdd: BDD, isf: ISF, multi: bool):
        """Shatter one output/core, or ``None`` when nothing useful fired.

        In no-DC mode the probe sees the 0-completion (``mulopII``
        assigns every don't care to 0); in DC mode it sees the raw
        interval, so every peel doubles as a conservative don't-care
        assignment.  Irreducible and rejected intervals are memoised per
        run — compositions frequently resurface unchanged after a
        sibling's step.
        """
        probe_isf = isf if self.use_dontcares else ISF.complete(isf.lo)
        key = (probe_isf.lo, probe_isf.hi, multi)
        if key in self._dsd_irreducible:
            return None
        local: Dict[str, int] = {}
        with profile_phase("dsd"):
            plan = shatter(bdd, probe_isf, self.n_lut, local)
        if plan is not None and not self._plan_worthwhile(bdd, plan,
                                                          multi):
            plan = None
            self._dsd_bump("rejected_plans")
        if plan is None:
            self._dsd_irreducible.add(key)
            self._dsd_bump("probes", local.get("probes", 0))
            return None
        for counter, count in local.items():
            self._dsd_bump(counter, count)
        return plan

    def _plan_worthwhile(self, bdd: BDD, plan, multi: bool) -> bool:
        """Adopt a plan only on strong structural evidence.

        Partial plans (a still-wide core) perturb the ncc search on the
        residue, and XOR peels in a multi-output bundle privatise
        parity-shell logic the joint step would have shared (the
        ``rd73``/``rd84`` sum outputs); the Table 1 tuning shows both
        losing more than the peel saves unless the peels fill at least
        one whole chain LUT (``n_lut - 1`` literals).  A complete
        shatter free of those hazards bypasses the search outright and
        is always taken.
        """
        peels = 0
        xor_peels = 0
        wide_cores = 0
        stack = [plan]
        while stack:
            node = stack.pop()
            if isinstance(node, DsdChain):
                peels += len(node.peels)
                xor_peels += sum(1 for kind, _, _ in node.peels
                                 if kind == "xor")
                stack.append(node.child)
            elif isinstance(node, DsdMux):
                stack.append(node.hi)
                stack.append(node.lo)
            elif isinstance(node, DsdCore):
                if len(node.isf.support(bdd)) > self.n_lut:
                    wide_cores += 1
        full_lut = peels >= self.n_lut - 1
        if wide_cores and not full_lut:
            return False
        if multi and xor_peels and not full_lut:
            return False
        return True

    def _name_cores(self, plan, base: str) -> List[DsdCore]:
        """Assign run-unique names to the plan's cores, in tree order."""
        cores: List[DsdCore] = []

        def walk(node) -> None:
            if isinstance(node, DsdCore):
                self._dsd_counter += 1
                node.name = f"{base}~d{self._dsd_counter}"
                cores.append(node)
            elif isinstance(node, DsdChain):
                walk(node.child)
            elif isinstance(node, DsdMux):
                walk(node.hi)
                walk(node.lo)

        walk(plan)
        return cores

    def _resolve_plan(self, name: str, plans: Dict[str, object],
                      signals: Dict[str, str], net: LutNetwork,
                      signal_of: Dict[int, str]) -> str:
        """Signal of a shattered output, emitting its plan on demand."""
        sig = signals.get(name)
        if sig is None:
            sig = self._emit_plan(plans[name], plans, signals, net,
                                  signal_of)
            signals[name] = sig
        return sig

    def _emit_plan(self, plan, plans: Dict[str, object],
                   signals: Dict[str, str], net: LutNetwork,
                   signal_of: Dict[int, str]) -> str:
        """Emit one plan tree bottom-up; returns its root signal."""
        if isinstance(plan, DsdConst):
            return CONST1 if plan.value else CONST0
        if isinstance(plan, DsdCore):
            # The core went through the normal flow (or was itself
            # shattered at a later level and has a nested plan).
            return self._resolve_plan(plan.name, plans, signals, net,
                                      signal_of)
        if isinstance(plan, DsdMux):
            hi = self._emit_plan(plan.hi, plans, signals, net, signal_of)
            lo = self._emit_plan(plan.lo, plans, signals, net, signal_of)
            return self._mux(net, signal_of[plan.var], hi, lo)
        # DsdChain: pack the peels innermost-first into LUTs taking
        # (n_lut - 1) literals plus the running child signal each —
        # ceil(k / (n_lut - 1)) LUTs for k peeled literals.
        sig = self._emit_plan(plan.child, plans, signals, net, signal_of)
        peels = plan.peels
        width = max(1, self.n_lut - 1)
        i = len(peels)
        while i > 0:
            j = max(0, i - width)
            chunk = peels[j:i]
            fanins = [signal_of[var] for _, var, _ in chunk] + [sig]
            sig = self._add_lut(net, fanins, chain_table(chunk),
                                name_hint="dsd")
            self._dsd_bump("chain_luts")
            i = j
        return sig

    def _decompose(self, bdd: BDD, named: List[Tuple[str, ISF]],
                   net: LutNetwork, signal_of: Dict[int, str],
                   depth: int, search_cooldown: int = 0) -> Dict[str, str]:
        """Decompose one bundle: level iteration plus DSD plan emission.

        The level worker records a *plan* for every output (or core) the
        tier-0 pre-pass shattered instead of a signal; once all residual
        cores have signals, the plans are emitted bottom-up — chains as
        packed literal LUTs, MUX splits through the shared MUX emitter.

        With the sub-ISF memo active every bundle entry first consults
        the computed table (splicing a verified tape replay on a hit)
        and otherwise records its own ``add_lut`` tape for storage —
        see :mod:`repro.decomp.submemo`.
        """
        frame = None
        if self._submemo_active:
            hit_or_frame = self._submemo_enter(bdd, named, net,
                                               signal_of, depth,
                                               search_cooldown)
            if isinstance(hit_or_frame, dict):
                return hit_or_frame
            frame = hit_or_frame
        try:
            plans: Dict[str, object] = {}
            signals = self._decompose_levels(bdd, named, net, signal_of,
                                             depth, search_cooldown,
                                             plans)
            if plans:
                with profile_phase("dsd"):
                    for name in list(plans):
                        self._resolve_plan(name, plans, signals, net,
                                           signal_of)
        except BaseException:
            if frame is not None:
                self._submemo_abort(frame)
            raise
        if frame is not None:
            self._submemo_record(frame, named, signals)
        return signals

    # -- sub-ISF computed table ----------------------------------------

    def _submemo_setup(self) -> None:
        """Decide (per run) whether the memo is live, and under which
        canonical config tag."""
        if self.use_submemo is False:
            return
        if self.use_submemo is None and not submemo.submemo_enabled():
            return
        # Budgets make the search trajectory wall-clock/heap dependent:
        # a memoised result would be neither reproducible nor safe to
        # splice into a differently-budgeted run.
        if self.time_budget is not None or self.node_budget is not None:
            return
        if faults.armed_sites() & _SUBMEMO_FAULT_SITES:
            return
        self._submemo_active = True
        self._submemo_cfg = (
            f"{submemo.code_tag()};n{self.n_lut}"
            f";dc{int(self.use_dontcares)}"
            f";s{int(self.use_symmetry_step)}"
            f"{int(self.use_sharing_step)}{int(self.use_single_step)}"
            f";mc{self.max_candidates};tc{self.try_candidates}"
            f";b{int(self.balanced)}p{self.balanced_max_p}"
            f";dsd{int(self._dsd_active)}")
        self._submemo_store = self._submemo_store_override \
            if self._submemo_store_override is not None \
            else submemo.default_store()
        self._submemo_counters = {
            "run_hits": 0, "store_hits": 0, "misses": 0, "splices": 0,
            "spliced_luts": 0, "stores": 0, "store_bytes": 0,
            "unportable": 0, "verify_rejects": 0, "invalid_payloads": 0,
            "run_evictions": 0,
        }

    def _bump_submemo(self, key: str, n: int = 1) -> None:
        self._submemo_counters[key] = \
            self._submemo_counters.get(key, 0) + n

    def _submemo_enter(self, bdd: BDD, named: List[Tuple[str, ISF]],
                       net: LutNetwork, signal_of: Dict[int, str],
                       depth: int, search_cooldown: int):
        """Consult the memo for one bundle.

        Returns the spliced ``{name: signal}`` dict on a usable hit, a
        new :class:`_RecFrame` (already pushed) on a miss, or ``None``
        for bundles below the memo granularity (a LUT-sized bundle is
        cheaper to leaf-emit than to hash).
        """
        support_set: Set[int] = set()
        for _, isf in named:
            support_set |= isf.support(bdd)
        if len(support_set) <= self.n_lut:
            return None
        support = sorted(support_set)
        id_key = (tuple((isf.lo, isf.hi) for _, isf in named),
                  search_cooldown)
        key = self._submemo_keys.get(id_key)
        if key is None:
            with profile_phase("submemo_key"):
                key = sub_isf_key(
                    bdd, [isf for _, isf in named], support,
                    f"{self._submemo_cfg};cd{search_cooldown}")
            self._submemo_keys[id_key] = key
        payload = self._submemo_run.get(key)
        from_run = payload is not None
        if payload is None and self._submemo_store is not None:
            payload = self._submemo_store.get(key)
        if payload is not None:
            spliced = self._submemo_splice(bdd, named, net, signal_of,
                                           depth, support, key, payload)
            if spliced is not None:
                self._bump_submemo("run_hits" if from_run
                                   else "store_hits")
                return spliced
        self._bump_submemo("misses")
        sig_ref: Dict[str, int] = {CONST0: submemo.REF_CONST0,
                                   CONST1: submemo.REF_CONST1}
        for rank, var in enumerate(support):
            sig_ref[signal_of[var]] = submemo.input_ref(rank)
        stats0 = (self.stats.decomposition_steps,
                  self.stats.shannon_steps,
                  self.stats.alphas_created,
                  self.stats.alphas_shared,
                  len(self.stats.joint_lower_bounds),
                  dict(self.stats.dsd),
                  len(self.stats.steps))
        frame = _RecFrame(key, support, sig_ref, depth, stats0)
        self._rec_frames.append(frame)
        return frame

    def _submemo_splice(self, bdd: BDD, named: List[Tuple[str, ISF]],
                        net: LutNetwork, signal_of: Dict[int, str],
                        depth: int, support: List[int], key: str,
                        payload: Dict) -> Optional[Dict[str, str]]:
        """Validate, verify and replay one memo payload.

        Nothing touches the network until the payload has passed the
        structural checks and (when enabled) the pure-BDD semantic
        verification against the *live* call's intervals — a corrupt or
        colliding entry is invalidated and the caller falls back to the
        cold search.  The replay feeds every call through
        :meth:`_add_lut`, so enclosing recording frames observe the
        spliced LUTs exactly as if the search had run.
        """
        if not submemo.validate_payload(payload, len(support),
                                        len(named)):
            self._bump_submemo("invalid_payloads")
            self._submemo_invalidate(key)
            return None
        if submemo.verify_enabled():
            with profile_phase("submemo_verify"):
                input_funcs = [bdd.var(v) for v in support]
                outs = submemo.payload_output_bdds(bdd, payload,
                                                   input_funcs)
                for (_, isf), g in zip(named, outs):
                    if not (bdd.leq(isf.lo, g) and bdd.leq(g, isf.hi)):
                        self._bump_submemo("verify_rejects")
                        self._submemo_invalidate(key)
                        return None
        with profile_phase("submemo_splice"):
            produced: List[str] = []

            def resolve(ref: int) -> str:
                if ref >= 0:
                    return produced[ref]
                if ref == submemo.REF_CONST0:
                    return CONST0
                if ref == submemo.REF_CONST1:
                    return CONST1
                return signal_of[support[submemo.input_rank(ref)]]

            for fanins, table, hint in payload["tape"]:
                sig = self._add_lut(
                    net, [resolve(ref) for ref in fanins],
                    [1 if ch == "1" else 0 for ch in table],
                    name_hint=hint)
                produced.append(sig)
            signals = {name: resolve(ref)
                       for (name, _), ref in zip(named, payload["out"])}
        self._submemo_replay_stats(payload.get("stats") or {}, depth,
                                   support)
        self._bump_submemo("splices")
        self._bump_submemo("spliced_luts", len(payload["tape"]))
        # Promote to the run table: repeat hits skip the store layers
        # (and their latency windows) entirely.
        if key not in self._submemo_run:
            self._submemo_run_put(key, payload,
                                  submemo.payload_bytes(payload))
        return signals

    def _submemo_replay_stats(self, delta: Dict, depth: int,
                              support: List[int]) -> None:
        """Re-apply the recorded counter deltas of a spliced subtree so
        warm runs report byte-identical engine counters to cold ones
        (the counters ride in every job row and cached record)."""
        self.stats.decomposition_steps += delta.get("ds", 0)
        self.stats.shannon_steps += delta.get("sh", 0)
        self.stats.alphas_created += delta.get("ac", 0)
        self.stats.alphas_shared += delta.get("as", 0)
        self.stats.joint_lower_bounds.extend(delta.get("jlb", []))
        for name, count in (delta.get("dsd") or {}).items():
            self._dsd_bump(name, count)
        try:  # step trace: informational, skipped if malformed
            for rel, bound, m, inc, au, sr, jmr in delta.get("st", []):
                decoded = tuple(
                    support[v] if 0 <= v < len(support) else -(v) - 1
                    for v in bound)
                self.stats.steps.append(StepRecord(
                    depth=depth + rel, bound=decoded, num_outputs=m,
                    included=inc, alphas_used=au, sum_r=sr,
                    joint_min_r=jmr))
        except (TypeError, ValueError, IndexError):
            pass
        reach = depth + delta.get("md", 0)
        self.stats.max_recursion_depth = max(
            self.stats.max_recursion_depth, reach)
        for frame in self._rec_frames:
            if reach > frame.reach:
                frame.reach = reach

    def _submemo_record(self, frame: _RecFrame,
                        named: List[Tuple[str, ISF]],
                        signals: Dict[str, str]) -> None:
        """Close a recording frame and store its tape (when portable)."""
        if self._rec_frames and self._rec_frames[-1] is frame:
            self._rec_frames.pop()
        else:  # never expected — frames are strictly nested
            self._submemo_abort(frame)
            return
        out_refs: List[int] = []
        for name, _ in named:
            ref = frame.sig_ref.get(signals[name])
            if ref is None:
                frame.dead = True
                break
            out_refs.append(ref)
        if frame.dead:
            self._bump_submemo("unportable")
            return
        payload = submemo.make_payload(len(frame.support), frame.tape,
                                       out_refs)
        s = self.stats
        ds0, sh0, ac0, as0, jlb0, dsd0, st0 = frame.stats0
        stats_delta: Dict[str, object] = {}
        if s.decomposition_steps > ds0:
            stats_delta["ds"] = s.decomposition_steps - ds0
        if s.shannon_steps > sh0:
            stats_delta["sh"] = s.shannon_steps - sh0
        if s.alphas_created > ac0:
            stats_delta["ac"] = s.alphas_created - ac0
        if s.alphas_shared > as0:
            stats_delta["as"] = s.alphas_shared - as0
        if len(s.joint_lower_bounds) > jlb0:
            stats_delta["jlb"] = s.joint_lower_bounds[jlb0:]
        if frame.reach > frame.depth0:
            stats_delta["md"] = frame.reach - frame.depth0
        dsd_delta = {name: count - dsd0.get(name, 0)
                     for name, count in s.dsd.items()
                     if count - dsd0.get(name, 0) > 0}
        if dsd_delta:
            stats_delta["dsd"] = dsd_delta
        if len(s.steps) > st0:
            # Bound variables are stored as support ranks so replay in
            # another context prints the *right* variables; ids outside
            # the frame support (alphas minted inside the bundle) are
            # kept verbatim as -(id+1) — best effort, trace-only.
            rank_of = {var: r for r, var in enumerate(frame.support)}
            stats_delta["st"] = [
                [st.depth - frame.depth0,
                 [rank_of.get(v, -(v) - 1) for v in st.bound],
                 st.num_outputs, st.included, st.alphas_used,
                 st.sum_r, st.joint_min_r]
                for st in s.steps[st0:]]
        if stats_delta:
            payload["stats"] = stats_delta
        size = submemo.payload_bytes(payload)
        self._bump_submemo("stores")
        self._bump_submemo("store_bytes", size)
        self._submemo_run_put(frame.key, payload, size)
        if self._submemo_store is not None \
                and size <= submemo.MAX_ENTRY_BYTES:
            self._submemo_store.put(frame.key, payload, size)

    def _submemo_run_put(self, key: str, payload: Dict,
                         size: int) -> None:
        """Byte-budgeted insert into the per-run table (L1)."""
        budget = submemo.byte_budget()
        if size > budget:
            return
        self._submemo_run[key] = payload
        self._submemo_run_bytes += size
        while self._submemo_run_bytes > budget and self._submemo_run:
            first = next(iter(self._submemo_run))
            dropped = self._submemo_run.pop(first)
            self._submemo_run_bytes -= submemo.payload_bytes(dropped)
            self._bump_submemo("run_evictions")

    def _submemo_abort(self, frame: _RecFrame) -> None:
        """Drop a frame on the exception path (nothing is stored)."""
        if self._rec_frames and self._rec_frames[-1] is frame:
            self._rec_frames.pop()
        else:
            try:
                self._rec_frames.remove(frame)
            except ValueError:
                pass

    def _submemo_invalidate(self, key: str) -> None:
        self._submemo_run.pop(key, None)
        if self._submemo_store is not None:
            self._submemo_store.invalidate(key)

    def _add_lut(self, net: LutNetwork, fanins: List[str],
                 table: Sequence[int],
                 name_hint: Optional[str] = None) -> str:
        """All engine LUT creation funnels through here so active
        recording frames capture the call as a tape entry.  A fanin
        unknown to a frame (a structural-hash hit on logic created
        outside the bundle) kills that frame — the tape would not be
        portable to another context."""
        if name_hint is None:
            out = net.add_lut(fanins, table)
        else:
            out = net.add_lut(fanins, table, name_hint=name_hint)
        for frame in self._rec_frames:
            if frame.dead:
                continue
            refs: List[int] = []
            for sig in fanins:
                ref = frame.sig_ref.get(sig)
                if ref is None:
                    frame.dead = True
                    break
                refs.append(ref)
            if frame.dead:
                continue
            frame.tape.append(
                (refs, "".join("1" if b else "0" for b in table),
                 name_hint))
            frame.sig_ref.setdefault(out, len(frame.tape) - 1)
        return out

    def _decompose_levels(self, bdd: BDD, named: List[Tuple[str, ISF]],
                          net: LutNetwork, signal_of: Dict[int, str],
                          depth: int, search_cooldown: int,
                          plans: Dict[str, object]) -> Dict[str, str]:
        """Main worker: iterates decomposition levels on one bundle.

        ``search_cooldown`` skips the (expensive) bound-set search for
        that many levels — used right after a Shannon step whose level
        found no candidates at all, since removing one variable rarely
        creates new ones.
        """
        signals: Dict[str, str] = {}
        pending = list(named)
        while pending:
            if self._fault_mid is not None:
                self._fault_mid()  # chaos site: worker.mid_decomp
            self.stats.max_recursion_depth = max(
                self.stats.max_recursion_depth, depth)
            for frame in self._rec_frames:
                if depth > frame.reach:
                    frame.reach = depth
            # (The computed table bounds its own memory now — the manager
            # clears it at BDD.cache_limit and counts the eviction.)
            still: List[Tuple[str, ISF]] = []
            for name, isf in pending:
                if self.use_dontcares and not isf.is_complete():
                    # Don't-care based support minimisation: an ISF often
                    # admits an extension independent of some variables.
                    # Crucial for composition functions, whose unused-code
                    # upper bound otherwise inflates the measured support.
                    with profile_phase("reduce_support"):
                        isf = isf.reduce_support(bdd)
                if len(isf.support(bdd)) <= self.n_lut:
                    with profile_phase("leaf_emit"):
                        signals[name] = self._emit_leaf(bdd, isf, net,
                                                        signal_of)
                    continue
                plan = None
                if self._dsd_active and name not in plans:
                    plan = self._dsd_probe(bdd, isf,
                                           multi=len(pending) > 1)
                if plan is None:
                    still.append((name, isf))
                    continue
                # Shattered: record the plan, leaf-emit the LUT-sized
                # cores right away and keep the wide ones in the flow
                # under fresh names the plan tree references.
                self._dsd_bump("shattered")
                plans[name] = plan
                for core in self._name_cores(plan, name):
                    self._dsd_bump("cores")
                    if len(core.isf.support(bdd)) <= self.n_lut:
                        with profile_phase("leaf_emit"):
                            signals[core.name] = self._emit_leaf(
                                bdd, core.isf, net, signal_of)
                    else:
                        still.append((core.name, core.isf))
            pending = still
            if not pending:
                break

            # Split support-disjoint outputs: a shared bound set cannot
            # help them and the split keeps search spaces small.
            components = self._components(bdd, pending)
            if len(components) > 1:
                for component in components:
                    signals.update(self._decompose(
                        bdd, component, net, signal_of, depth + 1))
                return signals

            over_time = (self._deadline is not None
                         and time.monotonic() > self._deadline)
            over_nodes = (self.node_budget is not None
                          and len(bdd) > self.node_budget)
            if over_time or over_nodes:
                self.stats.budget_exhausted = True
                for name, isf in pending:
                    f = self._choose_extension(bdd, isf)
                    signals[name] = self._mux_map(bdd, f, net, signal_of)
                return signals

            outputs = [isf for _, isf in pending]
            if not self.use_dontcares:
                outputs = [ISF.complete(o.lo) for o in outputs]

            if search_cooldown > 0:
                signals.update(self._shannon_step(
                    bdd, pending, outputs, net, signal_of, depth,
                    cooldown=search_cooldown - 1))
                return signals

            support = set()
            for isf in outputs:
                support |= isf.support(bdd)
            support = sorted(support)

            # Step 1 (or plain detection in no-DC mode) + symmetry groups.
            # The symmetry-maximising assignment is speculative: it only
            # replaces the raw outputs when the resulting decomposition
            # step is at least as good (on irregular logic the committed
            # don't cares can cost more than the symmetry buys).
            outputs_sym = None
            groups_sym = None
            with profile_phase("symmetry_groups"):
                groups = self._common_groups(bdd, outputs, support)
            if self.use_symmetry_step:
                with profile_phase("dc_step1_symmetry"):
                    outputs_sym, groups_sym = assign_step1_symmetry(
                        bdd, outputs, support)
                if all(len(g) <= 1 for g in groups_sym):
                    outputs_sym = None  # nothing was symmetrised

            if self.balanced:
                p = min(max(2, len(support) // 2), self.balanced_max_p,
                        len(support) - 1)
            else:
                p = min(self.n_lut, len(support) - 1)
            step = None
            if p >= 2:
                step = self._find_step(bdd, outputs, support, p, groups)
                if outputs_sym is not None:
                    step_sym = self._find_step(bdd, outputs_sym, support,
                                               p, groups_sym)
                    # Adopt the symmetrised outputs only when the step is
                    # strictly better AND its bound set actually swallows
                    # a whole symmetry group — the paper's precondition
                    # for the assignment to survive the later steps.
                    if step_sym is not None and (
                            step is None
                            or step_sym.gain > step.gain):
                        bound_set = set(step_sym.bound)
                        aligned = any(
                            len(g) >= 2 and set(g) <= bound_set
                            for g in groups_sym)
                        if aligned or step is None:
                            step = step_sym
                            outputs = outputs_sym
            if step is None and self.balanced:
                p2 = min(self.n_lut, len(support) - 1)
                if p2 >= 2 and p2 != p:
                    step = self._find_step(bdd, outputs, support, p2,
                                           groups)
            if step is None:
                # When the ranking produced no candidate at all, removing
                # a single variable is unlikely to create one — give the
                # Shannon children a two-level search cooldown.
                cooldown = 2 if self._last_rank_empty else 0
                signals.update(self._shannon_step(
                    bdd, pending, outputs, net, signal_of, depth,
                    cooldown=cooldown))
                return signals

            self.stats.decomposition_steps += 1
            self.stats.joint_lower_bounds.append(step.joint_min_r)
            used = sorted({i for k in step.included
                           for i in step.encodings[k].alpha_indices})
            sum_r = sum(step.encodings[k].r for k in step.included)
            self.stats.alphas_created += len(used)
            self.stats.alphas_shared += sum_r - len(used)
            self.stats.steps.append(StepRecord(
                depth=depth, bound=step.bound,
                num_outputs=len(pending), included=len(step.included),
                alphas_used=len(used), sum_r=sum_r,
                joint_min_r=step.joint_min_r))

            alpha_vars = self._realise_alphas(bdd, step, used, net,
                                              signal_of, depth)

            next_pending: List[Tuple[str, ISF]] = []
            for idx, (name, original) in enumerate(pending):
                if idx in step.included:
                    with profile_phase("encoding"):
                        g_isf = build_composition_for_output(
                            bdd, step.encodings[idx], output_index=0,
                            alpha_vars=alpha_vars)
                    next_pending.append((name, g_isf))
                else:
                    next_pending.append((name, original))
            pending = next_pending
            depth += 1
        return signals

    def _realise_alphas(self, bdd: BDD, step: _Step, used: Sequence[int],
                        net: LutNetwork, signal_of: Dict[int, str],
                        depth: int) -> Dict[int, int]:
        """LUTs (or a recursive bundle) for the used alphas; returns the
        alpha-index -> fresh-BDD-variable map."""
        bound_signals = [signal_of[v] for v in step.bound]
        if len(step.bound) <= self.n_lut:
            alpha_signals = {
                i: self._add_lut(net, bound_signals,
                                 list(step.pool[i].values),
                                 name_hint="a")
                for i in used}
        else:
            alpha_named = []
            for i in used:
                alpha_bdd = bdd.from_truth_table(
                    list(step.pool[i].values), list(step.bound))
                alpha_named.append(
                    (f"_a{depth}_{self.stats.decomposition_steps}_{i}",
                     ISF.complete(alpha_bdd)))
            sub_signals = self._decompose(bdd, alpha_named, net,
                                          signal_of, depth + 1)
            alpha_signals = {i: sub_signals[name]
                             for (name, _), i in zip(alpha_named, used)}
        alpha_vars: Dict[int, int] = {}
        for i in used:
            var = bdd.add_var(f"_alpha{len(signal_of)}_{depth}_{i}")
            alpha_vars[i] = var
            signal_of[var] = alpha_signals[i]
        return alpha_vars

    # ------------------------------------------------------------------

    def _components(self, bdd: BDD,
                    pending: List[Tuple[str, ISF]]
                    ) -> List[List[Tuple[str, ISF]]]:
        """Group outputs into support-connected components."""
        supports = [isf.support(bdd) for _, isf in pending]
        parent = list(range(len(pending)))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        var_owner: Dict[int, int] = {}
        for i, support in enumerate(supports):
            for var in support:
                if var in var_owner:
                    ra, rb = find(var_owner[var]), find(i)
                    if ra != rb:
                        parent[rb] = ra
                else:
                    var_owner[var] = i
        groups: Dict[int, List[Tuple[str, ISF]]] = {}
        for i, item in enumerate(pending):
            groups.setdefault(find(i), []).append(item)
        return list(groups.values())

    def _common_groups(self, bdd: BDD, outputs: Sequence[ISF],
                       support: Sequence[int],
                       max_checks: int = 1500) -> List[List[int]]:
        """Strong symmetry groups common to all outputs (no assignment).

        Budgeted: each pair check costs one cofactor comparison per
        output, so wide bundles stop early (remaining variables become
        singleton groups — a heuristic degradation only).  Runs in the
        word-parallel kernel domain when the support fits (identical
        decisions either way — only the predicate evaluation changes).
        """
        ops, handles = symmetry_domain(bdd, outputs, support,
                                       "symmetry_groups")
        start = time.perf_counter()
        merged: List[List[int]] = []
        checks = 0
        for var in support:
            placed = False
            if checks < max_checks:
                for group in merged:
                    rep = group[0]
                    checks += 1
                    if checks >= max_checks:
                        break
                    if all(ops.strongly_symmetric(f, rep, var)
                           for f in handles):
                        group.append(var)
                        placed = True
                        break
            if not placed:
                merged.append([var])
        if ops.domain == "kernel":
            KERNEL_STATS.record_hit("symmetry_groups",
                                    time.perf_counter() - start)
        return merged

    def _find_step(self, bdd: BDD, outputs: List[ISF],
                   support: Sequence[int], p: int,
                   groups: Sequence[Sequence[int]]) -> Optional[_Step]:
        """Evaluate ranked bound-set candidates with the full don't-care
        pipeline; return the step with the largest actual support
        reduction (None when nothing shrinks any output)."""
        # Wide bundles get a narrower (cheaper) search.
        weight = len(support) * max(1, len(outputs))
        max_candidates = self.max_candidates
        try_candidates = self.try_candidates
        if weight > 400:
            max_candidates = min(max_candidates, 12)
            try_candidates = min(try_candidates, 3)
        if weight > 1200:
            max_candidates = min(max_candidates, 8)
            try_candidates = min(try_candidates, 2)
        # Rank AND choose candidates on the 0-completed view in BOTH
        # modes so the search trajectories of mulopII and mulop-dc stay
        # aligned; the don't-care machinery then refines the chosen
        # bound.  With the onset-seeded class covers, the DC evaluation
        # of the same bound is never worse than the completed one, so
        # alignment makes mulop-dc dominate step-wise.
        ranking_view = [ISF.complete(o.lo) if not o.is_complete() else o
                        for o in outputs]
        # Convert-cache policy for the score memo: clear wholesale on
        # entry-count or byte overflow, count the eviction.  Entries
        # are ((outputs, p), candidate) -> score tuples; the estimate
        # charges the key tuples, which dominate.
        if (len(self._score_memo) > _SCORE_MEMO_LIMIT
                or self._score_memo_bytes > _SCORE_MEMO_BYTES):
            self._score_memo.clear()
            self._score_memo_bytes = 0
            self.stats.score_memo_evictions += 1
        memo_key = (tuple((o.lo, o.hi) for o in ranking_view), p)
        before = len(self._score_memo)
        with profile_phase("rank_bound_sets"):
            ranked = rank_bound_sets(bdd, ranking_view, support, p,
                                     groups, max_candidates,
                                     score_memo=self._score_memo,
                                     memo_key=memo_key)
        added = len(self._score_memo) - before
        if added > 0:
            self._score_memo_bytes += added * (
                160 + 32 * len(ranking_view) + 16 * p)
        self._last_rank_empty = not ranked
        best: Optional[_Step] = None
        best_gain = 0
        for bound, _ in ranked[:try_candidates]:
            step = self._evaluate_candidate(bdd, ranking_view, bound)
            if step is not None and (best is None
                                     or step.gain > best_gain):
                best = step
                best_gain = step.gain
        if best is None:
            return None
        if any(not o.is_complete() for o in outputs):
            # Refine the chosen bound with the true (incompletely
            # specified) outputs: per-output r can only shrink thanks to
            # the onset-seeded covers, so the refinement is adopted
            # whenever it exists.
            refined = self._evaluate_candidate(bdd, outputs, best.bound)
            if refined is not None:
                return refined
        return best

    def _evaluate_candidate(self, bdd: BDD, outputs: Sequence[ISF],
                            bound: Sequence[int]) -> Optional[_Step]:
        """Full pipeline (DC steps 2/3 + common alphas) for one bound."""
        work = list(outputs)
        joint_min_r = None
        if self.use_sharing_step:
            work, joint = assign_step2_sharing(bdd, work, bound)
            joint_min_r = joint.min_r
        if self.use_single_step:
            work, per_output = assign_step3_single(bdd, work, bound)
        else:
            per_output = [classes_for(bdd, [isf], bound)
                          for isf in work]
        if joint_min_r is None:
            joint_min_r = classes_for(bdd, work, bound).min_r
        with profile_phase("encoding"):
            pool, encodings = select_common_alphas(bdd, per_output)
        bound_set = set(bound)
        included: Set[int] = set()
        gain = 0
        for i, (isf, enc) in enumerate(zip(outputs, encodings)):
            inter = len(isf.support(bdd) & bound_set)
            if inter and enc.r < inter:
                included.add(i)
                gain += inter - enc.r
        if not included:
            return None
        # Charge the (shared) alpha cost against the gain so a step
        # helping one output with one brand-new alpha does not beat a
        # step helping many outputs with shared alphas.
        used = {i for k in included for i in encodings[k].alpha_indices}
        gain -= len(used) // 2
        return _Step(tuple(bound), pool, encodings, included,
                     joint_min_r, gain)

    # ------------------------------------------------------------------

    def _mux_map(self, bdd: BDD, f: int, net: LutNetwork,
                 signal_of: Dict[int, str]) -> str:
        """Fast fallback mapping after the time budget: walk the BDD,
        emit 5-feasible sub-functions as leaf LUTs and MUXes above
        (memoised per node, so sharing follows the BDD structure)."""
        if f == BDD.FALSE:
            return CONST0
        if f == BDD.TRUE:
            return CONST1
        cached = self._mux_memo.get(f)
        if cached is not None:
            return cached
        support = sorted(bdd.support(f))
        if len(support) <= self.n_lut:
            table = bdd.to_truth_table(f, support)
            signal = self._add_lut(net, [signal_of[v] for v in support],
                                   table)
        else:
            var = bdd.var_of(f)
            lo = self._mux_map(bdd, bdd.low(f), net, signal_of)
            hi = self._mux_map(bdd, bdd.high(f), net, signal_of)
            signal = self._mux(net, signal_of[var], hi, lo)
        self._mux_memo[f] = signal
        return signal

    def _mux(self, net: LutNetwork, sel: str, hi: str, lo: str) -> str:
        """A 2:1 MUX: one 3-input LUT, or three 2-input LUTs for n_lut=2."""
        if self.n_lut >= 3:
            # Inputs (sel, hi, lo): sel ? hi : lo.
            table = [0, 1, 0, 1, 0, 0, 1, 1]
            return self._add_lut(net, [sel, hi, lo], table,
                                 name_hint="mux")
        t1 = self._add_lut(net, [sel, hi], [0, 0, 0, 1], name_hint="and")
        t2 = self._add_lut(net, [sel, lo], [0, 1, 0, 0],
                           name_hint="andn")
        return self._add_lut(net, [t1, t2], [0, 1, 1, 1], name_hint="or")

    def _shannon_step(self, bdd: BDD, pending: List[Tuple[str, ISF]],
                      outputs: List[ISF], net: LutNetwork,
                      signal_of: Dict[int, str],
                      depth: int, cooldown: int = 0) -> Dict[str, str]:
        """Fallback: cofactor every output w.r.t. the most shared variable
        and recombine with MUXes.  Always support-reducing."""
        self.stats.shannon_steps += 1
        # Only the split/cofactor work is charged to the phase — the
        # recursive child decompositions account for themselves.
        with profile_phase("shannon_split"):
            counts: Dict[int, int] = {}
            for isf in outputs:
                for var in isf.support(bdd):
                    counts[var] = counts.get(var, 0) + 1
            split = max(sorted(counts), key=lambda v: counts[v])

            lo_named: List[Tuple[str, ISF]] = []
            hi_named: List[Tuple[str, ISF]] = []
            passthrough: List[Tuple[str, ISF]] = []
            for (name, _), isf in zip(pending, outputs):
                if split in isf.support(bdd):
                    lo_named.append((name, isf.restrict(bdd, split, 0)))
                    hi_named.append((name, isf.restrict(bdd, split, 1)))
                else:
                    passthrough.append((name, isf))

        signals: Dict[str, str] = {}
        lo_signals = self._decompose(
            bdd, lo_named + passthrough, net, signal_of, depth + 1,
            search_cooldown=cooldown)
        hi_signals = self._decompose(bdd, hi_named, net, signal_of,
                                     depth + 1, search_cooldown=cooldown)
        for name, _ in passthrough:
            signals[name] = lo_signals[name]
        for name, _ in lo_named:
            signals[name] = self._mux(net, signal_of[split],
                                      hi_signals[name], lo_signals[name])
        return signals


def decompose(func: MultiFunction, n_lut: int = 5,
              use_dontcares: bool = True,
              **engine_kwargs) -> LutNetwork:
    """One-call decomposition of a :class:`MultiFunction` to LUTs.

    ``use_dontcares=False`` gives the ``mulopII`` baseline; the default
    is the paper's ``mulop-dc``.
    """
    engine = DecompositionEngine(n_lut=n_lut, use_dontcares=use_dontcares,
                                 **engine_kwargs)
    return engine.run(func)
