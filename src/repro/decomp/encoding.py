"""Class encodings, decomposition functions and composition functions.

A *decomposition function* ``alpha: {0,1}^p -> {0,1}`` is represented by
its value vector over the ``2**p`` bound-set vertices
(:class:`AlphaFunction`).  An ``alpha`` is *strict* for an output iff it
is constant on each of that output's compatible classes — the restriction
the paper uses both to speed up common-function search and to preserve
symmetries (a strict function of a function symmetric in ``(x_i, x_j)``
is itself symmetric in that pair).

An :class:`OutputEncoding` selects, for one output, ``r_i`` alphas whose
joint value vector is injective on the output's classes; the composition
function ``g_i`` is then an ISF over the alpha variables and the free
variables, with *unused codes as don't cares* — this is exactly where the
incompletely specified functions of the recursion come from (Section 5).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bdd.manager import BDD
from repro.boolfunc.spec import ISF
from repro.decomp.compat import Classes


def sub_isf_key(bdd: BDD, isfs: Sequence[ISF], support: Sequence[int],
                config_tag: str) -> str:
    """Canonical content key of a sub-ISF bundle (the submemo key).

    Covers the shape of every interval's ``[lo, hi]`` BDDs with nodes
    renumbered children-first and variables identified by their *rank*
    in the sorted live support — never by id or name — so the same
    subfunction reached through different outputs, recursion paths,
    jobs or processes (where the surrounding manager allocated different
    variable ids) hashes identically.  Output order matters (the memo
    payload maps results back positionally); ``config_tag`` folds in
    every engine knob that can change the decomposition of the bundle.

    The labelled graph fully determines the bundle's semantics over the
    ranked variables *and* its node counts (the only structural property
    the engine's heuristics consult), which is why a key hit may splice
    a memoised sub-network bit-identically (see
    :mod:`repro.decomp.submemo`).
    """
    rank = {var: pos for pos, var in enumerate(support)}
    index: Dict[int, int] = {BDD.FALSE: 0, BDD.TRUE: 1}
    nodes: List[List[int]] = []
    roots: List[int] = []
    for isf in isfs:
        for root in (isf.lo, isf.hi):
            stack = [(root, False)]
            expanded = set()
            while stack:
                node, ready = stack.pop()
                if node in index:
                    continue
                if ready:
                    index[node] = len(nodes) + 2
                    nodes.append([rank[bdd.var_of(node)],
                                  index[bdd.low(node)],
                                  index[bdd.high(node)]])
                elif node not in expanded:
                    expanded.add(node)
                    stack.append((node, True))
                    stack.append((bdd.high(node), False))
                    stack.append((bdd.low(node), False))
            roots.append(index[root])
    blob = json.dumps({"n": len(support), "nodes": nodes,
                       "roots": roots, "cfg": config_tag},
                      sort_keys=True, separators=(",", ":")).encode()
    return hashlib.sha256(blob).hexdigest()


@dataclass(frozen=True)
class AlphaFunction:
    """A decomposition function as its value vector over bound vertices.

    Normalised so that ``values[0] == 0`` (complementing an alpha merely
    relabels codes, so one polarity suffices; normalisation maximises
    sharing and turns complement-of-projection into projection).
    """

    values: Tuple[int, ...]

    def __post_init__(self):
        if self.values and self.values[0] != 0:
            raise ValueError("alpha must be normalised (values[0] == 0)")
        n = len(self.values)
        if n & (n - 1) or n == 0:
            raise ValueError("value vector length must be a power of two")

    @staticmethod
    def normalised(values: Sequence[int]) -> "AlphaFunction":
        """Build with polarity normalisation applied."""
        values = tuple(int(bool(v)) for v in values)
        if values and values[0] == 1:
            values = tuple(1 - v for v in values)
        return AlphaFunction(values)

    def is_strict_for(self, classes: Classes) -> bool:
        """Constant on each compatible class of the output?"""
        for members in classes.classes:
            first = self.values[members[0]]
            if any(self.values[v] != first for v in members[1:]):
                return False
        return True

    def class_values(self, classes: Classes) -> Tuple[int, ...]:
        """Value per class (requires strictness)."""
        return tuple(self.values[members[0]] for members in classes.classes)

    def projection_var(self, bound: Sequence[int]) -> Optional[int]:
        """If the alpha is the projection onto one bound variable, return
        that variable id (such alphas need no LUT — they are wires)."""
        p = len(bound)
        for i in range(p):
            if all(((v >> (p - 1 - i)) & 1) == self.values[v]
                   for v in range(len(self.values))):
                return bound[i]
        return None

    def to_bdd(self, bdd: BDD, bound: Sequence[int]) -> int:
        """BDD over the bound variables."""
        return bdd.from_truth_table(list(self.values), bound)


@dataclass
class OutputEncoding:
    """The encoding of one output's classes by a subset of the alphas.

    ``alpha_indices`` point into the shared alpha list; ``codes[c]`` is
    the code of class ``c`` (the alphas' values on that class).
    """

    classes: Classes
    alpha_indices: List[int]
    codes: List[Tuple[int, ...]]

    @property
    def r(self) -> int:
        """Number of decomposition functions this output uses."""
        return len(self.alpha_indices)


def encode_output(classes: Classes, alphas: Sequence[AlphaFunction],
                  alpha_indices: Sequence[int]) -> OutputEncoding:
    """Derive (and validate) the class codes for one output."""
    codes = []
    for members in classes.classes:
        rep = members[0]
        codes.append(tuple(alphas[i].values[rep] for i in alpha_indices))
    for i in alpha_indices:
        if not alphas[i].is_strict_for(classes):
            raise ValueError(f"alpha {i} is not strict for the output")
    if len(set(codes)) != len(codes):
        raise ValueError("encoding is not injective on the classes")
    return OutputEncoding(classes, list(alpha_indices), codes)


def build_composition(bdd: BDD, encoding: OutputEncoding,
                      alpha_vars: Dict[int, int]) -> ISF:
    """The composition function ``g_i`` as an ISF.

    ``alpha_vars`` maps alpha indices to their BDD variables.  For each
    class code the interval is the class's merged cofactor interval; all
    unused codes are don't cares (``lo=0, hi=1``) — the don't cares the
    recursion will exploit.
    """
    variables = [alpha_vars[i] for i in encoding.alpha_indices]
    lo = BDD.FALSE
    hi = BDD.FALSE
    used = BDD.FALSE
    for c, code in enumerate(encoding.codes):
        cube = bdd.cube(dict(zip(variables, code)))
        merged = encoding.classes.merged[c][0] if len(
            encoding.classes.merged[c]) == 1 else None
        if merged is None:
            raise ValueError(
                "build_composition expects single-output class info")
        lo = bdd.apply_or(lo, bdd.apply_and(cube, merged.lo))
        hi = bdd.apply_or(hi, bdd.apply_and(cube, merged.hi))
        used = bdd.apply_or(used, cube)
    hi = bdd.apply_or(hi, bdd.apply_not(used))
    return ISF.create(bdd, lo, hi)


def build_composition_for_output(bdd: BDD, encoding: OutputEncoding,
                                 output_index: int,
                                 alpha_vars: Dict[int, int]) -> ISF:
    """Like :func:`build_composition` but for multi-output class info."""
    variables = [alpha_vars[i] for i in encoding.alpha_indices]
    lo = BDD.FALSE
    hi = BDD.FALSE
    used = BDD.FALSE
    for c, code in enumerate(encoding.codes):
        cube = bdd.cube(dict(zip(variables, code)))
        merged = encoding.classes.merged[c][output_index]
        lo = bdd.apply_or(lo, bdd.apply_and(cube, merged.lo))
        hi = bdd.apply_or(hi, bdd.apply_and(cube, merged.hi))
        used = bdd.apply_or(used, cube)
    hi = bdd.apply_or(hi, bdd.apply_not(used))
    return ISF.create(bdd, lo, hi)
