"""The paper's three-step don't-care assignment (Section 5).

1. :func:`assign_step1_symmetry` — before a bound set is chosen, assign
   don't cares to maximise symmetries (delegates to
   :mod:`repro.symmetry`); symmetries reduce ``ncc`` in the current step
   *and* are inherited by strict decomposition functions, so the gain
   propagates through the recursion.
2. :func:`assign_step2_sharing` — given the bound set, minimise the lower
   bound ``ceil(log2(ncc_joint))`` on the total number of decomposition
   functions: compute the *joint* compatible classes (all outputs at
   once, a clique cover) and narrow every vertex cofactor to its class's
   merged interval.  This maximises the potential for common
   decomposition functions.
3. :func:`assign_step3_single` — per output, merge that output's
   remaining compatible classes (the Chang/Marek-Sadowska method) and
   narrow accordingly, minimising ``r_i`` for the current step.

The steps are compatible: each is a pure interval narrowing, step 2's
merged vertices have *equal* cofactor vectors afterwards and equal
vectors are never separated by the class computation again, so step 3
cannot increase the step-2 lower bound.  Step 1's strong symmetries
survive steps 2/3 whenever each symmetry group lies entirely inside the
bound set or entirely inside the free set (the paper's condition), which
the bound-set search maintains.

All three steps ride the word-parallel kernel transparently when the
functions fit (:mod:`repro.kernel`): step 1 through the symmetry ops
adapter in :mod:`repro.symmetry.groups`, steps 2/3 through the class
computation in :mod:`repro.decomp.compat`.  No dispatch logic lives
here — the narrowings are bit-identical either way.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.bdd.manager import BDD
from repro.boolfunc.spec import ISF
from repro.decomp.compat import (
    Classes,
    assign_by_classes,
    classes_for,
)
from repro.obs.profiler import profile_phase
from repro.symmetry.groups import assign_for_symmetry_multi


def assign_step1_symmetry(bdd: BDD, outputs: Sequence[ISF],
                          variables: Sequence[int]
                          ) -> Tuple[List[ISF], List[List[int]]]:
    """Step 1: symmetry-maximising assignment (before bound-set choice).

    Returns the narrowed outputs and the common symmetry groups that seed
    the bound-set search.
    """
    return assign_for_symmetry_multi(bdd, outputs, variables)


def assign_step2_sharing(bdd: BDD, outputs: Sequence[ISF],
                         bound: Sequence[int]
                         ) -> Tuple[List[ISF], Classes]:
    """Step 2: minimise the lower bound on the *total* number of
    decomposition functions via the joint compatible classes.

    Returns the narrowed outputs and the joint classes (whose ``min_r``
    is the lower bound ``ceil(log2(ncc(f, B)))`` of the paper).
    """
    with profile_phase("dc_step2_sharing"):
        joint = classes_for(bdd, outputs, bound)
        narrowed = assign_by_classes(bdd, outputs, joint)
        return narrowed, joint


def assign_step3_single(bdd: BDD, outputs: Sequence[ISF],
                        bound: Sequence[int]
                        ) -> Tuple[List[ISF], List[Classes]]:
    """Step 3: per-output class merging (Chang/Marek-Sadowska).

    Returns the narrowed outputs and each output's final classes — the
    classes the encoding and common-alpha selection work with.
    """
    with profile_phase("dc_step3_single"):
        narrowed: List[ISF] = []
        all_classes: List[Classes] = []
        for isf in outputs:
            classes = classes_for(bdd, [isf], bound)
            [new_isf] = assign_by_classes(bdd, [isf], classes)
            narrowed.append(new_isf)
            all_classes.append(classes)
        return narrowed, all_classes


def assign_all_steps(bdd: BDD, outputs: Sequence[ISF],
                     bound: Sequence[int]
                     ) -> Tuple[List[ISF], List[Classes], Classes]:
    """Steps 2 and 3 back to back (step 1 runs before bound selection).

    Returns the final outputs, the per-output classes, and the joint
    classes from step 2 (for reporting the lower bound).
    """
    outputs, joint = assign_step2_sharing(bdd, outputs, bound)
    outputs, per_output = assign_step3_single(bdd, outputs, bound)
    return outputs, per_output, joint
