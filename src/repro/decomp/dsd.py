"""Tier-0 structural pre-pass: shatter functions before the ncc search.

The compatible-class search (``rank_bound_sets`` plus candidate
evaluation) costs exponential work in the bound-set width even through
the word-parallel kernel, yet most benchmark outputs wear a cheap
*structural shell*: literals ANDed/ORed/XORed onto a smaller core, a
selector variable multiplexing two much narrower halves, or variables
the DC interval lets us drop outright.  This pass peels that shell with
a handful of mask compares per check — tier 0 of the dispatch hierarchy
— and hands only the irreducible cores to the search.

Split rules, over an interval ``[lo, hi]`` and its cofactors
``(lo0, hi0)``/``(lo1, hi1)`` with respect to a variable ``x`` (each
rule asks whether *some extension* of the ISF has the shape, so every
hit doubles as a don't-care assignment):

* constant — ``lo`` empty (some extension is 0) or ``hi`` full;
* dead — the cofactor intervals intersect: remainder
  ``[lo0 | lo1, hi0 & hi1]``;
* ``f = x AND g`` — ``lo0`` empty: remainder ``[lo1, hi1]`` (negated
  literal when ``lo1`` is empty instead);
* ``f = x OR g`` — ``hi1`` full: remainder ``[lo0, hi0]`` (negated
  literal when ``hi0`` is full instead);
* ``f = x XOR g`` — the interval ``[lo0 | ~hi1, hi0 & ~lo1]`` is
  non-empty: that interval is the remainder;
* MUX — no rule fired for any support variable: split on the selector
  whose branches *both* shed at least :data:`MUX_MIN_SHRINK` support
  variables, recursing on the branches.

The checks run in a fixed order (dead, AND+, AND-, OR+, OR-, XOR,
ascending variable, first hit wins and the scan restarts), so the
decision sequence is a pure function of the interval.  Both ops
adapters — :class:`BddDsdOps` here and
:class:`repro.kernel.dsd.MaskDsdOps` in word space — implement the
checks over the same order, and cores are lowered through the canonical
``bools_to_bdd``, so the emitted network is bit-identical whether or
not the kernel served the probe.

The result of a probe is a *plan tree* (:class:`DsdConst`,
:class:`DsdChain`, :class:`DsdMux`, :class:`DsdCore`), or ``None`` when
nothing fired; the engine emits chains as packed ``(n_lut - 1)``-literal
LUTs, MUX nodes through its shared MUX emitter, and feeds cores back
into the normal per-level flow.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from repro.bdd.manager import BDD
from repro.boolfunc.spec import ISF
from repro.kernel import _OFF_VALUES, STATS as KERNEL_STATS

try:
    from repro.kernel.dsd import dsd_mask_domain
except ImportError:  # pragma: no cover - numpy unavailable
    dsd_mask_domain = None

#: Minimum support-variable shed required of *both* branches before a
#: MUX split fires.  1 would make MUX subsume a plain Shannon step and
#: steal decompositions the ncc search does strictly better on; 2 keeps
#: it to selectors that genuinely partition the support (tuned against
#: the Table 1 suite: no circuit's LUT count regresses).
MUX_MIN_SHRINK = 2


def dsd_enabled() -> bool:
    """Is the tier-0 pre-pass enabled?  (``REPRO_DSD=off`` disables.)

    Read per run so tests and the CLI's ``--no-dsd`` can flip it.
    """
    return os.environ.get("REPRO_DSD", "").strip().lower() \
        not in _OFF_VALUES


# -- plan tree ------------------------------------------------------------

@dataclass
class DsdConst:
    """Some extension of the probed interval is the constant ``value``."""

    value: int


@dataclass
class DsdCore:
    """An irreducible (or already-LUT-sized) residue for the main flow.

    The engine names cores when it accepts a plan; the name keys the
    signal the emitted tree references.
    """

    isf: ISF
    name: Optional[str] = None


@dataclass
class DsdMux:
    """``f = var ? hi : lo`` with both branches recursively planned."""

    var: int
    hi: object
    lo: object


@dataclass
class DsdChain:
    """Literals peeled off a child, outermost first.

    Each peel is ``(kind, var, positive)`` with ``kind`` in
    ``{"and", "or", "xor"}``: the outermost peel ``(k0, v0, s0)`` means
    ``f = lit(v0, s0) <k0> rest``.
    """

    peels: List[Tuple[str, int, bool]]
    child: object


# -- BDD-domain ops adapter ----------------------------------------------

class BddDsdOps:
    """Fallback split checks straight over BDD nodes.

    Check-for-check the same decision sequence as
    :class:`repro.kernel.dsd.MaskDsdOps`; used when the kernel is off or
    the support exceeds its tiers.
    """

    domain = "bdd"

    def __init__(self, bdd: BDD) -> None:
        self.bdd = bdd

    def admits_const(self, h: ISF) -> Optional[int]:
        if h.lo == BDD.FALSE:
            return 0
        if h.hi == BDD.TRUE:
            return 1
        return None

    def support_vars(self, h: ISF) -> Tuple[int, ...]:
        return tuple(sorted(h.support(self.bdd)))

    def _halves(self, h: ISF, var: int):
        bdd = self.bdd
        lo0 = bdd.restrict(h.lo, var, 0)
        lo1 = bdd.restrict(h.lo, var, 1)
        if h.hi == h.lo:
            hi0, hi1 = lo0, lo1
        else:
            hi0 = bdd.restrict(h.hi, var, 0)
            hi1 = bdd.restrict(h.hi, var, 1)
        return lo0, hi0, lo1, hi1

    def try_peel(self, h: ISF, var: int):
        bdd = self.bdd
        lo0, hi0, lo1, hi1 = self._halves(h, var)
        if bdd.leq(lo0, hi1) and bdd.leq(lo1, hi0):
            return ("dead", True,
                    ISF(bdd.apply_or(lo0, lo1), bdd.apply_and(hi0, hi1)))
        if lo0 == BDD.FALSE:
            return ("and", True, ISF(lo1, hi1))
        if lo1 == BDD.FALSE:
            return ("and", False, ISF(lo0, hi0))
        if hi1 == BDD.TRUE:
            return ("or", True, ISF(lo0, hi0))
        if hi0 == BDD.TRUE:
            return ("or", False, ISF(lo1, hi1))
        g_lo = bdd.apply_or(lo0, bdd.apply_not(hi1))
        g_hi = bdd.apply_and(hi0, bdd.apply_not(lo1))
        if bdd.leq(g_lo, g_hi):
            return ("xor", True, ISF(g_lo, g_hi))
        return None

    def cofactors(self, h: ISF, var: int) -> Tuple[ISF, ISF]:
        lo0, hi0, lo1, hi1 = self._halves(h, var)
        return ISF(lo0, hi0), ISF(lo1, hi1)

    def lower(self, h: ISF) -> ISF:
        return h


# -- the probe ------------------------------------------------------------

def _bump(counters: Dict[str, int], key: str, n: int = 1) -> None:
    counters[key] = counters.get(key, 0) + n


def _probe(ops, h, n_lut: int, counters: Dict[str, int]):
    """Shatter one interval; a plan node, or ``None`` when nothing fired.

    Peels accumulate outermost-first; dead variables are dropped without
    a peel record; MUX splits recurse on both branches.  A residue whose
    support already fits one LUT stops the scan (the engine leaf-emits
    it), and a residue where no rule applies becomes a core for the ncc
    search — reported as ``None`` when the whole probe peeled nothing.
    """
    peels: List[Tuple[str, int, bool]] = []
    changed = False
    child = None
    while True:
        const = ops.admits_const(h)
        if const is not None:
            _bump(counters, "const_leaves")
            child = DsdConst(const)
            changed = True
            break
        sup = ops.support_vars(h)
        if len(sup) <= n_lut:
            child = DsdCore(ops.lower(h))
            break
        hit = None
        hit_var = None
        for var in sup:
            hit = ops.try_peel(h, var)
            if hit is not None:
                hit_var = var
                break
        if hit is not None:
            kind, positive, h = hit
            changed = True
            if kind == "dead":
                _bump(counters, "dead_vars")
            else:
                _bump(counters, f"{kind}_peels")
                peels.append((kind, hit_var, positive))
            continue
        best = None
        for var in sup:
            h0, h1 = ops.cofactors(h, var)
            s0 = len(ops.support_vars(h0))
            s1 = len(ops.support_vars(h1))
            if len(sup) - s0 >= MUX_MIN_SHRINK \
                    and len(sup) - s1 >= MUX_MIN_SHRINK:
                key = (s0 + s1, var)
                if best is None or key < best[0]:
                    best = (key, var, h0, h1)
        if best is not None:
            _, var, h0, h1 = best
            _bump(counters, "mux_splits")
            changed = True
            hi_plan = _probe(ops, h1, n_lut, counters) \
                or DsdCore(ops.lower(h1))
            lo_plan = _probe(ops, h0, n_lut, counters) \
                or DsdCore(ops.lower(h0))
            child = DsdMux(var, hi_plan, lo_plan)
            break
        # Irreducible residue.
        child = DsdCore(ops.lower(h))
        break
    if not changed:
        return None
    return DsdChain(peels, child) if peels else child


def shatter(bdd: BDD, isf: ISF, n_lut: int,
            counters: Dict[str, int]):
    """Probe one ISF, kernel-served when the support fits a tier.

    Returns a plan tree or ``None``.  Kernel-served probes are timed
    under the ``dsd_probe`` op in the kernel stats; when the kernel
    declines (off, too wide, cost model) the probe runs the identical
    decision sequence over BDD restricts.
    """
    _bump(counters, "probes")
    domain = dsd_mask_domain(bdd, isf) if dsd_mask_domain is not None \
        else None
    if domain is not None:
        ops, handle = domain
        start = perf_counter()
        plan = _probe(ops, handle, n_lut, counters)
        KERNEL_STATS.record_hit("dsd_probe", perf_counter() - start)
        return plan
    return _probe(BddDsdOps(bdd), isf, n_lut, counters)


# -- chain LUT packing ----------------------------------------------------

def chain_table(chunk: List[Tuple[str, int, bool]]) -> List[int]:
    """Truth table of one packed chain LUT.

    Fanins are the chunk's peel literals (outermost first, MSB-first in
    the table) followed by the child signal as the least significant
    input.  The value folds the chunk from the child outward:
    ``acc = lit <op> acc`` for each peel, innermost first.
    """
    k = len(chunk) + 1
    table = []
    for idx in range(1 << k):
        acc = idx & 1  # child signal, least significant input
        for pos in range(len(chunk) - 1, -1, -1):
            kind, _, positive = chunk[pos]
            bit = (idx >> (k - 1 - pos)) & 1
            lit = bit if positive else 1 - bit
            if kind == "and":
                acc = lit & acc
            elif kind == "or":
                acc = lit | acc
            else:
                acc = lit ^ acc
        table.append(acc)
    return table


__all__ = [
    "BddDsdOps",
    "DsdChain",
    "DsdConst",
    "DsdCore",
    "DsdMux",
    "MUX_MIN_SHRINK",
    "chain_table",
    "dsd_enabled",
    "shatter",
]
