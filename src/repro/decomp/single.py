"""Single-output decomposition — the textbook one-step API.

Thin convenience layer over the class/encoding machinery for users who
want one Ashenhurst/Curtis/Roth-Karp step on one function rather than
the full recursive multi-output flow:

>>> from repro.bdd.manager import BDD
>>> from repro.decomp.single import decompose_single
>>> bdd = BDD(5)
>>> maj = bdd.from_truth_table(
...     [1 if bin(k).count('1') >= 2 else 0 for k in range(8)], [0, 1, 2])
>>> f = bdd.apply_xor(maj, bdd.apply_and(bdd.var(3), bdd.var(4)))
>>> step = decompose_single(bdd, f, [0, 1, 2])
>>> step.r
1
>>> step.verify(f)
True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bdd.manager import BDD
from repro.boolfunc.spec import ISF
from repro.decomp.compat import Classes, classes_for
from repro.decomp.encoding import (
    AlphaFunction,
    build_composition_for_output,
)
from repro.decomp.multi import select_common_alphas


@dataclass
class SingleDecomposition:
    """Result of one decomposition step of a single-output function.

    ``alphas[i]`` is a BDD over the bound variables; ``g`` is an ISF
    over the fresh alpha variables (``alpha_vars``) and the free
    variables, with unused codes as don't cares.
    """

    bdd: BDD
    bound: Tuple[int, ...]
    classes: Classes
    alphas: List[int]
    alpha_functions: List[AlphaFunction]
    alpha_vars: List[int]
    g: ISF

    @property
    def ncc(self) -> int:
        """Number of compatible classes."""
        return self.classes.ncc

    @property
    def r(self) -> int:
        """Number of decomposition functions."""
        return len(self.alphas)

    def is_nontrivial(self) -> bool:
        """Does the step reduce communication (``r < p``)?"""
        return self.r < len(self.bound)

    def recompose(self, g_extension: Optional[int] = None) -> int:
        """Substitute the alphas back into (an extension of) ``g``.

        Returns a completely specified function equal to an extension of
        the original ``f``; with the default ``g_extension`` the lower
        interval end of ``g`` is used.
        """
        g = g_extension if g_extension is not None else self.g.lo
        substitution = {var: alpha
                        for var, alpha in zip(self.alpha_vars,
                                              self.alphas)}
        return self.bdd.vector_compose(g, substitution)

    def verify(self, f: int) -> bool:
        """Check ``f == g(alpha(xB), xF)`` (exact, canonical)."""
        return self.recompose() == f


def decompose_single(bdd: BDD, f: int,
                     bound: Sequence[int]) -> SingleDecomposition:
    """One decomposition step of a completely specified function.

    Raises ``ValueError`` when the bound set is not a strict subset of
    the support (no free variables would remain).
    """
    support = bdd.support(f)
    if not set(bound) & support:
        raise ValueError("bound set does not intersect the support")
    if not support - set(bound):
        raise ValueError("bound set must leave free variables")
    isf = ISF.complete(f)
    classes = classes_for(bdd, [isf], bound)
    pool, encodings = select_common_alphas(bdd, [classes])
    enc = encodings[0]
    alpha_functions = [pool[i] for i in enc.alpha_indices]
    alpha_vars = [bdd.add_var() for _ in enc.alpha_indices]
    alpha_bdds = [a.to_bdd(bdd, list(bound)) for a in alpha_functions]
    g = build_composition_for_output(
        bdd, enc, output_index=0,
        alpha_vars=dict(zip(enc.alpha_indices, alpha_vars)))
    return SingleDecomposition(bdd, tuple(bound), classes, alpha_bdds,
                               alpha_functions, alpha_vars, g)
