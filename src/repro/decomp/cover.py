"""Exact minimum clique cover for compatibility graphs.

The paper reduces both the step-2 lower-bound minimisation and the
Chang/Marek-Sadowska class merging to the minimum clique cover problem.
:mod:`repro.decomp.compat` ships the fast onset-seeded greedy cover the
engine uses by default; this module provides an *exact* branch-and-bound
cover for small instances (the bound-set vertex counts of ``p <= 5``
give at most 32 vertices, which is usually tractable), so the heuristic
can be audited and optionally replaced.

A clique here is validity-checked by the *running interval
intersection*: pairwise compatibility is not sufficient for ISFs, the
common extension must exist for the whole clique.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.bdd.manager import BDD
from repro.boolfunc.spec import ISF
from repro.decomp.compat import (
    Classes,
    _intersect_vectors,
    compute_classes,
    vertex_cofactors,
)
from repro.obs.profiler import record_event


def _dedupe(cofactors: Sequence[Sequence[ISF]]):
    rep_of: dict = {}
    unique: List[Tuple[ISF, ...]] = []
    members: List[List[int]] = []
    for v, vec in enumerate(cofactors):
        key = tuple(vec)
        if key in rep_of:
            members[rep_of[key]].append(v)
        else:
            rep_of[key] = len(unique)
            unique.append(key)
            members.append([v])
    return unique, members


def exact_cover(bdd: BDD, cofactors: Sequence[Sequence[ISF]],
                bound: Sequence[int],
                node_limit: int = 200000) -> Optional[Classes]:
    """Minimum clique cover by branch and bound; None if the search
    exceeds ``node_limit`` B&B nodes (caller should fall back to the
    greedy cover).

    Vertices are assigned in order; each is placed into every existing
    clique whose running intersection admits it, or opens a new clique.
    The greedy cover provides the initial upper bound.
    """
    unique, members = _dedupe(cofactors)
    n = len(unique)
    greedy = compute_classes(bdd, cofactors, bound)
    best_count = greedy.ncc
    best_assign: Optional[List[int]] = None

    budget = [node_limit]
    assign = [-1] * n
    cliques: List[List[ISF]] = []  # running intersections

    def branch(v: int) -> None:
        nonlocal best_count, best_assign
        if budget[0] <= 0:
            return
        budget[0] -= 1
        if len(cliques) >= best_count:
            return  # cannot improve
        if v == n:
            best_count = len(cliques)
            best_assign = list(assign)
            return
        vec = list(unique[v])
        for c in range(len(cliques)):
            merged = _intersect_vectors(bdd, cliques[c], vec)
            if merged is None:
                continue
            saved = cliques[c]
            cliques[c] = merged
            assign[v] = c
            branch(v + 1)
            cliques[c] = saved
        # Open a new clique.
        cliques.append(vec)
        assign[v] = len(cliques) - 1
        branch(v + 1)
        cliques.pop()
        assign[v] = -1

    branch(0)
    if budget[0] <= 0 and best_assign is None:
        return None
    if best_assign is None:
        return greedy  # greedy was already optimal

    # Materialise the Classes structure from the best assignment.
    num_vertices = len(cofactors)
    num_cliques = max(best_assign) + 1
    classes: List[List[int]] = [[] for _ in range(num_cliques)]
    intersections: List[Optional[List[ISF]]] = [None] * num_cliques
    for i, c in enumerate(best_assign):
        classes[c].extend(members[i])
        vec = list(unique[i])
        if intersections[c] is None:
            intersections[c] = vec
        else:
            intersections[c] = _intersect_vectors(bdd, intersections[c],
                                                  vec)
    pairs = sorted(zip(classes, intersections),
                   key=lambda pair: min(pair[0]))
    classes = [sorted(m) for m, _ in pairs]
    merged = [inter for _, inter in pairs]
    class_of = [0] * num_vertices
    for c, vertices in enumerate(classes):
        for v in vertices:
            class_of[v] = c
    return Classes(tuple(bound), classes, class_of, merged)


def classes_for_exact(bdd: BDD, outputs: Sequence[ISF],
                      bound: Sequence[int]) -> Classes:
    """Like :func:`repro.decomp.compat.classes_for` but exact when the
    branch and bound finishes within its node budget."""
    cofactors = vertex_cofactors(bdd, outputs, bound)
    result = exact_cover(bdd, cofactors, bound)
    if result is None:
        # Surfaced through DecompositionStats.exact_cover_fallbacks and
        # the --profile report — the greedy degradation used to be silent.
        record_event("exact_cover_fallback")
        return compute_classes(bdd, cofactors, bound)
    return result
