"""Sub-ISF computed table: canonical subfunction memoization.

The paper's three-step don't-care assignment deliberately steers
different outputs (and recursion levels) toward *identical* predecessor
blocks — so the same sub-ISF bundle keeps reappearing: across outputs
within one run, across jobs in a batch, across workers of the serve
pool, across nodes of a distributed batch.  This module memoizes the
engine's work at that granularity.

**Key** — :func:`repro.decomp.encoding.sub_isf_key`: a canonical hash of
the bundle's interval BDDs with variables identified by rank in the
sorted live support, plus a config tag covering every engine knob that
can change the result.

**Payload** — a *splice tape*: the ordered ``add_lut`` calls the cold
search made for the bundle, with fanins expressed as position-relative
references (input rank / constant / earlier tape entry) plus one result
reference per output.  Replaying the tape through the live network's
``add_lut`` re-creates exactly the LUTs the cold search would have
created — structural hashing, degenerate-table folding and fresh-name
allocation all resolve *in the target context*, which is what makes a
splice bit-identical to a cold search rather than merely equivalent.

**Layers** — consulted in order, promoted upward on hit:

1. the engine's per-run table (``DecompositionEngine`` holds it;
   cleared by ``reset()``) — this is where cross-output hits land;
2. a process-wide byte-budgeted LRU (:class:`SubMemoStore.warm`) shared
   by every engine in the process — warm pool workers hit here;
3. a persistent ``ResultCache`` namespace (``submemo``) with the cache's
   atomic writes and poisoning checks — jobs and batches share it;
4. an optional :class:`~repro.dist.cachenet.RemoteCache` so serve pools
   and multi-node batches share warm subfunctions across hosts.

**Safety** — a payload is structurally validated and (under
``REPRO_SUBMEMO_VERIFY``, default on in tests) semantically verified in
pure BDD space *before* any network mutation; a corrupt or colliding
entry degrades to a cold search and is invalidated, never spliced.  The
memo is an accelerator, not a correctness dependency.
"""

from __future__ import annotations

import json
import os
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.bdd.manager import BDD

#: ``off``/``0``/``false`` disables the sub-ISF memo everywhere.
SUBMEMO_ENV = "REPRO_SUBMEMO"

#: Byte budget of the process-warm layer (and the engine's per-run
#: table); default 64 MiB.
SUBMEMO_BYTES_ENV = "REPRO_SUBMEMO_BYTES"

#: Force splice-time semantic verification on (``1``) or off (``0``).
#: Unset, verification defaults to on under pytest and off elsewhere.
SUBMEMO_VERIFY_ENV = "REPRO_SUBMEMO_VERIFY"

#: Directory of the persistent layer.  Falls back to ``REPRO_CACHE_DIR``
#: when unset; when neither is set the memo stays in-process only (unit
#: tests and ad-hoc runs must not silently grow ``~/.cache/repro``).
SUBMEMO_DIR_ENV = "REPRO_SUBMEMO_DIR"

#: ``host:port`` of a :mod:`repro.dist.cachenet` server to share the
#: memo across hosts (read-through, write-behind).
SUBMEMO_REMOTE_ENV = "REPRO_SUBMEMO_REMOTE"

DEFAULT_BYTE_BUDGET = 64 * 1024 * 1024

#: Entries larger than this are not stored: a giant tape is nearly as
#: expensive to verify/splice as to recompute, and would evict hundreds
#: of useful entries from the warm layer.
MAX_ENTRY_BYTES = 1 << 20

#: Payload layout version (checked on read; bump on tape format change).
PAYLOAD_VERSION = 1

# Fanin/result references: non-negative ints index the tape,
# REF_CONST0/REF_CONST1 are the constants, -(rank + 3) is the input
# with that rank in the bundle's sorted live support.
REF_CONST0 = -1
REF_CONST1 = -2
_REF_INPUT_BASE = 3


def input_ref(rank: int) -> int:
    """Reference encoding of the ``rank``-th support input."""
    return -(rank + _REF_INPUT_BASE)


def input_rank(ref: int) -> int:
    """Inverse of :func:`input_ref` (caller guarantees an input ref)."""
    return -ref - _REF_INPUT_BASE


def code_tag() -> str:
    """Algorithm-version tag folded into every sub-ISF key: a stale
    entry recorded by an older engine must miss, exactly like the
    job-level cache."""
    from repro.runtime.cache import CACHE_CODE_VERSION
    return f"{CACHE_CODE_VERSION}/submemo-{PAYLOAD_VERSION}"


def _truthy(value: Optional[str], default: bool) -> bool:
    if value is None:
        return default
    return value.strip().lower() not in ("", "0", "off", "false", "no")


def submemo_enabled() -> bool:
    """The :data:`SUBMEMO_ENV` switch (default on)."""
    return _truthy(os.environ.get(SUBMEMO_ENV), True)


def verify_enabled() -> bool:
    """Splice-time semantic verification: forced by
    :data:`SUBMEMO_VERIFY_ENV`, else on exactly under pytest."""
    env = os.environ.get(SUBMEMO_VERIFY_ENV)
    if env is not None:
        return _truthy(env, True)
    return "PYTEST_CURRENT_TEST" in os.environ


def byte_budget() -> int:
    """Warm-layer byte budget (:data:`SUBMEMO_BYTES_ENV`)."""
    env = os.environ.get(SUBMEMO_BYTES_ENV)
    if env:
        try:
            return max(0, int(env))
        except ValueError:
            pass
    return DEFAULT_BYTE_BUDGET


# ---------------------------------------------------------------------
# Payload construction / validation / verification
# ---------------------------------------------------------------------


def make_payload(n_inputs: int, tape: Sequence[Tuple[Sequence[int], str,
                                                     Optional[str]]],
                 out_refs: Sequence[int]) -> Dict[str, Any]:
    """Assemble a splice-tape payload (see the module docstring)."""
    return {
        "v": PAYLOAD_VERSION,
        "n": int(n_inputs),
        "m": len(out_refs),
        "tape": [[list(fanins), table, hint]
                 for fanins, table, hint in tape],
        "out": list(out_refs),
    }


def payload_bytes(payload: Dict[str, Any]) -> int:
    """Serialized size estimate used for the byte budgets."""
    return len(json.dumps(payload, separators=(",", ":")))


def _valid_ref(ref: Any, n_inputs: int, tape_pos: int) -> bool:
    if not isinstance(ref, int) or isinstance(ref, bool):
        return False
    if ref >= 0:
        return ref < tape_pos
    if ref in (REF_CONST0, REF_CONST1):
        return True
    rank = -ref - _REF_INPUT_BASE
    return 0 <= rank < n_inputs


def validate_payload(payload: Any, n_inputs: int,
                     m_outputs: int) -> bool:
    """Structural poisoning check; must pass before any splice.

    Cheap and total: every field type, every reference bound, every
    table shape.  A payload that fails here is treated exactly like a
    cache miss (and invalidated by the caller) — never spliced, never
    raised.
    """
    if not isinstance(payload, dict):
        return False
    if payload.get("v") != PAYLOAD_VERSION:
        return False
    if payload.get("n") != n_inputs or payload.get("m") != m_outputs:
        return False
    tape = payload.get("tape")
    out = payload.get("out")
    if not isinstance(tape, list) or not isinstance(out, list):
        return False
    if len(out) != m_outputs or len(tape) > 1 << 20:
        return False
    for pos, entry in enumerate(tape):
        if not isinstance(entry, (list, tuple)) or len(entry) != 3:
            return False
        fanins, table, hint = entry
        if not isinstance(fanins, list) or not 1 <= len(fanins) <= 16:
            return False
        if any(not _valid_ref(ref, n_inputs, pos) for ref in fanins):
            return False
        if not isinstance(table, str) \
                or len(table) != (1 << len(fanins)) \
                or set(table) - {"0", "1"}:
            return False
        if hint is not None and not isinstance(hint, str):
            return False
    return all(_valid_ref(ref, n_inputs, len(tape)) for ref in out)


def payload_output_bdds(bdd: BDD, payload: Dict[str, Any],
                        input_funcs: Sequence[int]) -> List[int]:
    """Evaluate the tape in pure BDD space; one function per output.

    ``input_funcs[rank]`` is the BDD of the ``rank``-th support input.
    Used by splice-time verification: each output function must lie in
    the live call's ISF interval *before* the tape touches the network.
    Cost is bounded by ``2^k`` cube ops per LUT (``k <= n_lut``).
    """
    funcs: List[int] = []

    def resolve(ref: int) -> int:
        if ref >= 0:
            return funcs[ref]
        if ref == REF_CONST0:
            return BDD.FALSE
        if ref == REF_CONST1:
            return BDD.TRUE
        return input_funcs[-ref - _REF_INPUT_BASE]

    for fanins, table, _hint in payload["tape"]:
        fanin_funcs = [resolve(ref) for ref in fanins]
        k = len(fanin_funcs)
        g = BDD.FALSE
        for row, bit in enumerate(table):
            if bit != "1":
                continue
            cube = BDD.TRUE
            for i, ff in enumerate(fanin_funcs):
                lit = ff if (row >> (k - 1 - i)) & 1 \
                    else bdd.apply_not(ff)
                cube = bdd.apply_and(cube, lit)
                if cube == BDD.FALSE:
                    break
            g = bdd.apply_or(g, cube)
        funcs.append(g)
    return [resolve(ref) for ref in payload["out"]]


# ---------------------------------------------------------------------
# The layered store
# ---------------------------------------------------------------------


class SubMemoStore:
    """Process-level layers of the sub-ISF memo (warm / disk / remote).

    The engine's per-run table sits above this; everything here is
    shared by every engine in the process.  All layers key on the same
    canonical sub-ISF key and hold the same JSON payload shape, so an
    entry can be promoted upward verbatim.
    """

    def __init__(self, byte_limit: Optional[int] = None,
                 disk_root: "str | os.PathLike | None" = None,
                 remote: Optional[str] = None) -> None:
        self.byte_limit = byte_budget() if byte_limit is None \
            else byte_limit
        #: key -> (payload, size); insertion order == LRU order.
        self.warm: "OrderedDict[str, Tuple[Dict[str, Any], int]]" = \
            OrderedDict()
        self.warm_bytes = 0
        self.disk = None
        if disk_root is not None:
            from repro.runtime.cache import ResultCache
            # memory_limit=0: the warm layer above already is the
            # in-memory front; a second LRU would double-count bytes.
            self.disk = ResultCache(disk_root, memory_limit=0,
                                    namespace="submemo")
        self.remote = None
        if remote:
            host, _, port = remote.rpartition(":")
            from repro.dist.cachenet import RemoteCache
            self.remote = RemoteCache(host or "127.0.0.1", int(port),
                                      namespace="submemo")
        self.counters: Dict[str, int] = {
            "warm_hits": 0, "disk_hits": 0, "remote_hits": 0,
            "misses": 0, "stores": 0, "store_bytes": 0,
            "warm_evictions": 0, "invalidated": 0, "oversize": 0,
        }

    # -- lookup --------------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        entry = self.warm.get(key)
        if entry is not None:
            self.warm.move_to_end(key)
            self.counters["warm_hits"] += 1
            return entry[0]
        for layer, counter in ((self.disk, "disk_hits"),
                               (self.remote, "remote_hits")):
            if layer is None:
                continue
            payload = layer.get(key)
            if payload is not None:
                self.counters[counter] += 1
                self._warm_put(key, payload, payload_bytes(payload))
                return payload
        self.counters["misses"] += 1
        return None

    # -- store ---------------------------------------------------------

    def put(self, key: str, payload: Dict[str, Any],
            size: Optional[int] = None) -> None:
        size = payload_bytes(payload) if size is None else size
        if size > MAX_ENTRY_BYTES:
            self.counters["oversize"] += 1
            return
        self.counters["stores"] += 1
        self.counters["store_bytes"] += size
        self._warm_put(key, payload, size)
        if self.disk is not None:
            self.disk.put(key, payload)
        if self.remote is not None:
            self.remote.put(key, payload)

    def _warm_put(self, key: str, payload: Dict[str, Any],
                  size: int) -> None:
        if self.byte_limit <= 0 or size > self.byte_limit:
            return
        old = self.warm.pop(key, None)
        if old is not None:
            self.warm_bytes -= old[1]
        self.warm[key] = (payload, size)
        self.warm_bytes += size
        while self.warm_bytes > self.byte_limit and self.warm:
            _, (_, evicted) = self.warm.popitem(last=False)
            self.warm_bytes -= evicted
            self.counters["warm_evictions"] += 1

    def invalidate(self, key: str) -> None:
        """Drop a poisoned entry from every local layer (the remote
        server keeps its copy; its next reader re-verifies anyway)."""
        self.counters["invalidated"] += 1
        old = self.warm.pop(key, None)
        if old is not None:
            self.warm_bytes -= old[1]
        if self.disk is not None:
            self.disk.invalidate(key)

    # -- lifecycle / observability -------------------------------------

    def flush(self) -> None:
        """Block until write-behind remote puts have shipped (one-shot
        workers call this before exiting; otherwise queued writes die
        with the process)."""
        if self.remote is not None:
            self.remote.flush()

    def stats(self) -> Dict[str, Any]:
        data = dict(self.counters)
        data["warm_entries"] = len(self.warm)
        data["warm_bytes"] = self.warm_bytes
        data["byte_limit"] = self.byte_limit
        data["layers"] = {
            "disk": self.disk is not None,
            "remote": self.remote is not None,
        }
        return data


_STORE: Optional[SubMemoStore] = None
_STORE_SIG: Optional[Tuple] = None


def _env_signature() -> Tuple:
    return (os.getpid(),
            os.environ.get(SUBMEMO_DIR_ENV),
            os.environ.get("REPRO_CACHE_DIR"),
            os.environ.get(SUBMEMO_REMOTE_ENV),
            os.environ.get(SUBMEMO_BYTES_ENV))


def default_store() -> SubMemoStore:
    """The process-wide store, rebuilt when the environment (or the
    process, after a fork — an inherited remote socket must not be
    shared) changes.  The persistent layer activates only when
    ``REPRO_SUBMEMO_DIR`` or ``REPRO_CACHE_DIR`` names a directory."""
    global _STORE, _STORE_SIG
    sig = _env_signature()
    if _STORE is None or sig != _STORE_SIG:
        disk_root = os.environ.get(SUBMEMO_DIR_ENV) \
            or os.environ.get("REPRO_CACHE_DIR") or None
        _STORE = SubMemoStore(disk_root=disk_root,
                              remote=os.environ.get(SUBMEMO_REMOTE_ENV))
        _STORE_SIG = sig
    return _STORE


def reset_default_store() -> None:
    """Drop the process singleton (tests; also frees the warm layer)."""
    global _STORE, _STORE_SIG
    if _STORE is not None:
        _STORE.flush()
    _STORE = None
    _STORE_SIG = None


__all__ = [
    "SUBMEMO_ENV", "SUBMEMO_BYTES_ENV", "SUBMEMO_VERIFY_ENV",
    "SUBMEMO_DIR_ENV", "SUBMEMO_REMOTE_ENV", "PAYLOAD_VERSION",
    "REF_CONST0", "REF_CONST1", "input_ref", "input_rank", "code_tag",
    "submemo_enabled",
    "verify_enabled", "byte_budget", "make_payload", "payload_bytes",
    "validate_payload", "payload_output_bdds", "SubMemoStore",
    "default_store", "reset_default_store",
]
