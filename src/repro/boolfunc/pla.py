"""Espresso-format PLA reading and writing.

Supports the directives used by the MCNC two-level benchmarks:
``.i``, ``.o``, ``.p``, ``.ilb``, ``.ob``, ``.type``, ``.e``/``.end``.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.bdd.manager import BDD
from repro.boolfunc.cube import Cube, CubeList
from repro.boolfunc.spec import ISF, MultiFunction


class PlaError(ValueError):
    """Malformed PLA text."""


def parse_pla_cubes(text: str) -> Tuple[CubeList, dict]:
    """Parse PLA text into a :class:`CubeList` plus metadata.

    Metadata keys: ``type`` (fd/fr/f), ``input_names``, ``output_names``.
    """
    num_inputs: Optional[int] = None
    num_outputs: Optional[int] = None
    pla_type = "fd"
    input_names = None
    output_names = None
    cubes = []
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("."):
            parts = line.split()
            directive = parts[0]
            if directive == ".i":
                num_inputs = int(parts[1])
            elif directive == ".o":
                num_outputs = int(parts[1])
            elif directive == ".p":
                pass  # informational cube count
            elif directive == ".ilb":
                input_names = parts[1:]
            elif directive == ".ob":
                output_names = parts[1:]
            elif directive == ".type":
                pla_type = parts[1]
            elif directive in (".e", ".end"):
                break
            else:
                pass  # ignore unknown directives, as espresso does
            continue
        parts = line.split()
        if len(parts) == 1 and num_inputs is not None:
            # Tolerate files without whitespace between fields.
            field = parts[0]
            parts = [field[:num_inputs], field[num_inputs:]]
        if len(parts) != 2:
            raise PlaError(f"bad cube line: {raw!r}")
        in_part, out_part = parts
        if num_inputs is None or num_outputs is None:
            raise PlaError("cube before .i/.o declaration")
        if len(in_part) != num_inputs or len(out_part) != num_outputs:
            raise PlaError(f"cube arity mismatch: {raw!r}")
        cubes.append(Cube(in_part, out_part))
    if num_inputs is None or num_outputs is None:
        raise PlaError("missing .i/.o declaration")
    cube_list = CubeList(num_inputs, num_outputs, cubes)
    meta = {
        "type": pla_type,
        "input_names": input_names,
        "output_names": output_names,
    }
    return cube_list, meta


def parse_pla(text: str, bdd: Optional[BDD] = None) -> MultiFunction:
    """Parse PLA text into a :class:`MultiFunction`.

    A fresh manager is created unless ``bdd`` is given (in which case the
    inputs are appended as new variables).
    """
    cube_list, meta = parse_pla_cubes(text)
    if bdd is None:
        bdd = BDD(0)
    names = meta["input_names"] or [f"x{i}" for i in range(cube_list.num_inputs)]
    variables = [bdd.add_var(name) for name in names]
    pairs = cube_list.to_sets(bdd, variables, meta["type"])
    outputs = [ISF.from_onset_dcset(bdd, onset, dc) for onset, dc in pairs]
    output_names = (meta["output_names"]
                    or [f"f{j}" for j in range(cube_list.num_outputs)])
    return MultiFunction(bdd, variables, outputs,
                         input_names=names, output_names=output_names)


def write_pla(func: MultiFunction) -> str:
    """Write a :class:`MultiFunction` as a (minterm-level) fd-type PLA.

    Every care minterm of the union of supports is enumerated, so this is
    intended for small functions (tests, golden files).
    """
    n = func.num_inputs
    if n > 16:
        raise ValueError(
            "write_pla enumerates minterms; refusing n > 16 inputs")
    lines = [f".i {n}", f".o {func.num_outputs}"]
    lines.append(".ilb " + " ".join(func.input_names))
    lines.append(".ob " + " ".join(func.output_names))
    lines.append(".type fd")
    body = []
    for k in range(1 << n):
        bits = [(k >> (n - 1 - i)) & 1 for i in range(n)]
        assignment = dict(zip(func.inputs, bits))
        values = func.eval(assignment)
        out_chars = []
        for value in values:
            if value is None:
                out_chars.append("-")
            else:
                out_chars.append(str(value))
        if any(ch != "0" for ch in out_chars):
            body.append("".join(str(b) for b in bits) + " " + "".join(out_chars))
    lines.append(f".p {len(body)}")
    lines.extend(body)
    lines.append(".e")
    return "\n".join(lines) + "\n"
