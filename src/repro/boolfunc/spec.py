"""Incompletely specified functions and multi-output bundles.

An incompletely specified function (ISF) is represented as an *interval*
``[lo, hi]`` of completely specified functions: ``lo`` is the onset and
``hi = onset OR dc-set``; any completely specified ``f`` with
``lo <= f <= hi`` is an *extension*.  This is the representation used
throughout the paper's don't-care machinery: assigning don't cares means
narrowing the interval, and two ISFs are *compatible* (admit a common
extension) iff their intervals intersect.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.bdd.manager import BDD


@dataclass(frozen=True)
class ISF:
    """An incompletely specified function as an interval ``[lo, hi]``.

    ``lo`` and ``hi`` are BDD node ids in the owning manager with
    ``lo <= hi`` (checked at construction via :meth:`create`).
    The care set is ``lo OR NOT hi``; the don't-care set is
    ``hi AND NOT lo``.
    """

    lo: int
    hi: int

    @staticmethod
    def create(bdd: BDD, lo: int, hi: int) -> "ISF":
        """Construct with the interval invariant checked."""
        if not bdd.leq(lo, hi):
            raise ValueError("ISF requires lo <= hi")
        return ISF(lo, hi)

    @staticmethod
    def complete(f: int) -> "ISF":
        """The completely specified function ``f`` as a degenerate interval."""
        return ISF(f, f)

    @staticmethod
    def from_onset_dcset(bdd: BDD, onset: int, dcset: int) -> "ISF":
        """Build from onset and don't-care set (must be disjoint)."""
        if bdd.apply_and(onset, dcset) != BDD.FALSE:
            raise ValueError("onset and dc-set must be disjoint")
        return ISF(onset, bdd.apply_or(onset, dcset))

    # -- predicates ----------------------------------------------------

    def is_complete(self) -> bool:
        """No don't cares left?"""
        return self.lo == self.hi

    def dc_set(self, bdd: BDD) -> int:
        """BDD of the don't-care set."""
        return bdd.apply_diff(self.hi, self.lo)

    def care_set(self, bdd: BDD) -> int:
        """BDD of the care set."""
        return bdd.apply_not(self.dc_set(bdd))

    def admits(self, bdd: BDD, f: int) -> bool:
        """Is the completely specified ``f`` an extension of this ISF?"""
        return bdd.leq(self.lo, f) and bdd.leq(f, self.hi)

    def refines(self, bdd: BDD, other: "ISF") -> bool:
        """Is this interval contained in ``other`` (every extension of
        self extends other)?"""
        return bdd.leq(other.lo, self.lo) and bdd.leq(self.hi, other.hi)

    # -- combination ---------------------------------------------------

    def intersect(self, bdd: BDD, other: "ISF") -> Optional["ISF"]:
        """Interval intersection, or None if the ISFs are incompatible."""
        lo = bdd.apply_or(self.lo, other.lo)
        hi = bdd.apply_and(self.hi, other.hi)
        if not bdd.leq(lo, hi):
            return None
        return ISF(lo, hi)

    def compatible(self, bdd: BDD, other: "ISF") -> bool:
        """Do the intervals intersect (common extension exists)?"""
        return (bdd.leq(self.lo, other.hi)
                and bdd.leq(other.lo, self.hi))

    # -- cofactors and transforms ---------------------------------------

    def restrict(self, bdd: BDD, var: int, value: int) -> "ISF":
        """Cofactor both interval ends."""
        return ISF(bdd.restrict(self.lo, var, value),
                   bdd.restrict(self.hi, var, value))

    def cofactor(self, bdd: BDD, assignment: Dict[int, int]) -> "ISF":
        """Cofactor w.r.t. a partial assignment."""
        return ISF(bdd.cofactor(self.lo, assignment),
                   bdd.cofactor(self.hi, assignment))

    def rename(self, bdd: BDD, mapping: Dict[int, int]) -> "ISF":
        """Rename variables in both interval ends."""
        return ISF(bdd.rename(self.lo, mapping),
                   bdd.rename(self.hi, mapping))

    def negate(self, bdd: BDD) -> "ISF":
        """The interval of the negations."""
        return ISF(bdd.apply_not(self.hi), bdd.apply_not(self.lo))

    # -- extensions -----------------------------------------------------

    def extension_lo(self) -> int:
        """The extension assigning all don't cares to 0."""
        return self.lo

    def extension_hi(self) -> int:
        """The extension assigning all don't cares to 1."""
        return self.hi

    def support(self, bdd: BDD) -> set:
        """Union of the supports of both interval ends.

        This over-approximates the *necessary* support: a variable outside
        this set is certainly irrelevant for every extension.
        """
        return bdd.support(self.lo) | bdd.support(self.hi)

    def reduce_support(self, bdd: BDD) -> "ISF":
        """Drop variables some extension does not need (greedy).

        A variable ``v`` can be eliminated iff the two cofactor intervals
        intersect (``lo|v=0 <= hi|v=1`` and ``lo|v=1 <= hi|v=0``); the
        result replaces both cofactors by the intersection — a pure
        don't-care assignment.  Variables are tried greedily, so the
        result is an extension-interval independent of a *maximal* (not
        necessarily maximum) set of variables.
        """
        isf = self
        changed = True
        while changed:
            changed = False
            for var in sorted(isf.support(bdd)):
                lo0 = bdd.restrict(isf.lo, var, 0)
                lo1 = bdd.restrict(isf.lo, var, 1)
                hi0 = bdd.restrict(isf.hi, var, 0)
                hi1 = bdd.restrict(isf.hi, var, 1)
                if bdd.leq(lo0, hi1) and bdd.leq(lo1, hi0):
                    isf = ISF(bdd.apply_or(lo0, lo1),
                              bdd.apply_and(hi0, hi1))
                    changed = True
        return isf


class MultiFunction:
    """A multi-output (incompletely specified) Boolean function.

    Wraps a BDD manager, an ordered input-variable list and one
    :class:`ISF` per output.  This is the unit the decomposition driver
    operates on.
    """

    def __init__(self, bdd: BDD, inputs: Sequence[int],
                 outputs: Sequence[ISF],
                 input_names: Optional[Sequence[str]] = None,
                 output_names: Optional[Sequence[str]] = None) -> None:
        self.bdd = bdd
        self.inputs: List[int] = list(inputs)
        self.outputs: List[ISF] = list(outputs)
        self.input_names = (list(input_names) if input_names
                            else [bdd.var_name(v) for v in self.inputs])
        self.output_names = (list(output_names) if output_names
                             else [f"f{i}" for i in range(len(self.outputs))])
        if len(self.input_names) != len(self.inputs):
            raise ValueError("input name count mismatch")
        if len(self.output_names) != len(self.outputs):
            raise ValueError("output name count mismatch")

    # -- construction ----------------------------------------------------

    @classmethod
    def from_truth_tables(cls, bdd: BDD, inputs: Sequence[int],
                          tables: Sequence[Sequence[int]],
                          dc_tables: Optional[Sequence[Sequence[int]]] = None,
                          **names) -> "MultiFunction":
        """Build from one truth table per output (optionally DC masks)."""
        outputs = []
        for i, table in enumerate(tables):
            onset = bdd.from_truth_table(table, inputs)
            if dc_tables is not None:
                dcset = bdd.from_truth_table(dc_tables[i], inputs)
                # Where DC mask is set, the onset value is irrelevant.
                onset = bdd.apply_diff(onset, dcset)
                outputs.append(ISF.from_onset_dcset(bdd, onset, dcset))
            else:
                outputs.append(ISF.complete(onset))
        return cls(bdd, inputs, outputs, **names)

    @classmethod
    def from_callable(cls, bdd: BDD, inputs: Sequence[int],
                      num_outputs: int,
                      fn: Callable[..., Sequence[int]],
                      **names) -> "MultiFunction":
        """Build from a Python callable returning a bit vector per input
        assignment (inputs passed MSB-first as separate arguments)."""
        n = len(inputs)
        if n > 20:
            raise ValueError(
                "from_callable tabulates 2**n rows; refusing n > 20 "
                "(build the function symbolically instead)")
        tables: List[List[int]] = [[] for _ in range(num_outputs)]
        for k in range(1 << n):
            bits = [(k >> (n - 1 - i)) & 1 for i in range(n)]
            out = fn(*bits)
            if len(out) != num_outputs:
                raise ValueError("callable returned wrong output arity")
            for i, b in enumerate(out):
                tables[i].append(1 if b else 0)
        return cls.from_truth_tables(bdd, inputs, tables, **names)

    # -- views -----------------------------------------------------------

    @property
    def num_inputs(self) -> int:
        """Number of input variables."""
        return len(self.inputs)

    @property
    def num_outputs(self) -> int:
        """Number of outputs."""
        return len(self.outputs)

    def is_complete(self) -> bool:
        """Are all outputs completely specified?"""
        return all(o.is_complete() for o in self.outputs)

    def support(self) -> set:
        """Union of the supports of all outputs."""
        result = set()
        for out in self.outputs:
            result |= out.support(self.bdd)
        return result

    def eval(self, assignment: Dict[int, int]) -> List[Optional[int]]:
        """Evaluate all outputs; a don't-care point evaluates to None."""
        values: List[Optional[int]] = []
        for out in self.outputs:
            lo = self.bdd.eval(out.lo, assignment)
            hi = self.bdd.eval(out.hi, assignment)
            if lo:
                values.append(1)
            elif not hi:
                values.append(0)
            else:
                values.append(None)
        return values

    def completed_lo(self) -> "MultiFunction":
        """The completion assigning every don't care to 0 (the baseline
        ``mulopII`` behaviour in Table 1)."""
        return MultiFunction(
            self.bdd, self.inputs,
            [ISF.complete(o.lo) for o in self.outputs],
            input_names=self.input_names, output_names=self.output_names)

    def restrict_outputs(self, indices: Sequence[int]) -> "MultiFunction":
        """A sub-bundle with only the selected outputs."""
        return MultiFunction(
            self.bdd, self.inputs,
            [self.outputs[i] for i in indices],
            input_names=self.input_names,
            output_names=[self.output_names[i] for i in indices])

    # -- identity and wire format ----------------------------------------

    def canonical_key(self) -> str:
        """Stable content hash of the specification.

        The hash covers the input/output names and the shape of every
        output interval's ``[lo, hi]`` BDDs, with nodes renumbered in a
        deterministic children-first traversal and variables identified
        by their position in ``self.inputs`` — so it is independent of
        manager node ids, of auxiliary variables other code created in
        the same manager, and of the order cubes were inserted (BDDs are
        canonical for a fixed variable order, so any insertion order
        yields the same graphs).  Two specs with the same key denote the
        same incompletely specified function; this is the function part
        of the persistent result-cache key (see
        :mod:`repro.runtime.cache`).
        """
        bdd = self.bdd
        var_label: Dict[int, str] = {
            var: f"i{pos}" for pos, var in enumerate(self.inputs)}
        roots: List[int] = []
        for isf in self.outputs:
            roots.append(isf.lo)
            roots.append(isf.hi)
        index: Dict[int, int] = {BDD.FALSE: 0, BDD.TRUE: 1}
        nodes: List[List] = []
        for root in roots:
            stack = [(root, False)]
            expanded = set()
            while stack:
                node, ready = stack.pop()
                if node in index:
                    continue
                if ready:
                    index[node] = len(nodes) + 2
                    var = bdd.var_of(node)
                    nodes.append([
                        var_label.get(var, bdd.var_name(var)),
                        index[bdd.low(node)], index[bdd.high(node)]])
                elif node not in expanded:
                    expanded.add(node)
                    stack.append((node, True))
                    stack.append((bdd.high(node), False))
                    stack.append((bdd.low(node), False))
        payload = {
            "inputs": list(self.input_names),
            "outputs": list(self.output_names),
            "nodes": nodes,
            "roots": [index[r] for r in roots],
        }
        blob = json.dumps(payload, sort_keys=True,
                          separators=(",", ":")).encode()
        return hashlib.sha256(blob).hexdigest()

    def to_wire(self) -> str:
        """JSON wire form for shipping the spec to another process.

        Round-trips through :meth:`from_wire`; the rebuilt function lives
        in a fresh manager with the same variable order, so decomposing
        it yields bit-identical results to decomposing the original.
        """
        from repro.bdd.serialize import dump_multifunction
        return dump_multifunction(self)

    @staticmethod
    def from_wire(text: str) -> "MultiFunction":
        """Rebuild a spec serialised with :meth:`to_wire` (fresh manager)."""
        from repro.bdd.serialize import load_multifunction
        return load_multifunction(text)

    def __repr__(self) -> str:
        kind = "complete" if self.is_complete() else "incomplete"
        return (f"<MultiFunction {self.num_inputs} in / "
                f"{self.num_outputs} out, {kind}>")
