"""BLIF (Berkeley Logic Interchange Format) reading and writing.

Combinational subset: ``.model``, ``.inputs``, ``.outputs``, ``.names``
(with single-output SOP cover lines), ``.end``.  Parsing flattens the
network into per-output BDDs, which is what the decomposition flow
consumes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.bdd.manager import BDD
from repro.boolfunc.spec import ISF, MultiFunction


class BlifError(ValueError):
    """Malformed BLIF text."""


def _tokenise(text: str) -> List[List[str]]:
    """Logical lines (backslash continuations folded, comments stripped)."""
    lines: List[str] = []
    pending = ""
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].rstrip()
        if line.endswith("\\"):
            pending += line[:-1] + " "
            continue
        pending += line
        if pending.strip():
            lines.append(pending.strip())
        pending = ""
    if pending.strip():
        lines.append(pending.strip())
    return [line.split() for line in lines]


def parse_blif(text: str, bdd: Optional[BDD] = None) -> MultiFunction:
    """Parse combinational BLIF into a :class:`MultiFunction`."""
    if bdd is None:
        bdd = BDD(0)
    inputs: List[str] = []
    outputs: List[str] = []
    # name -> (input signal names, cover rows [(in_pattern, out_value)])
    tables: Dict[str, Tuple[List[str], List[Tuple[str, str]]]] = {}
    current: Optional[str] = None

    for tokens in _tokenise(text):
        head = tokens[0]
        if head == ".model":
            continue
        if head == ".inputs":
            inputs.extend(tokens[1:])
            current = None
        elif head == ".outputs":
            outputs.extend(tokens[1:])
            current = None
        elif head == ".names":
            signals = tokens[1:]
            if not signals:
                raise BlifError(".names needs at least an output")
            current = signals[-1]
            tables[current] = (signals[:-1], [])
        elif head in (".end", ".exdc"):
            current = None
        elif head.startswith("."):
            if head in (".latch", ".subckt", ".gate"):
                raise BlifError(f"unsupported BLIF construct {head}")
            current = None
        else:
            if current is None:
                raise BlifError(f"cover line outside .names: {tokens}")
            fanins, rows = tables[current]
            if len(fanins) == 0:
                if len(tokens) != 1 or tokens[0] not in "01":
                    raise BlifError(f"bad constant row: {tokens}")
                rows.append(("", tokens[0]))
            else:
                if len(tokens) != 2:
                    raise BlifError(f"bad cover row: {tokens}")
                pattern, value = tokens
                if len(pattern) != len(fanins):
                    raise BlifError(f"cover arity mismatch: {tokens}")
                rows.append((pattern, value))

    variables = {name: bdd.add_var(name) for name in inputs}
    node_bdd: Dict[str, int] = {name: bdd.var(var)
                                for name, var in variables.items()}

    def build(name: str, trail: tuple) -> int:
        if name in node_bdd:
            return node_bdd[name]
        if name not in tables:
            raise BlifError(f"undefined signal {name!r}")
        if name in trail:
            raise BlifError(f"combinational cycle through {name!r}")
        fanins, rows = tables[name]
        fanin_bdds = [build(f, trail + (name,)) for f in fanins]
        # The cover lists either onset rows (value 1) or offset rows
        # (value 0); mixing is not allowed by BLIF.
        values = {value for _, value in rows}
        if values - {"0", "1"}:
            raise BlifError(f"bad cover value in {name!r}")
        if len(values) > 1:
            raise BlifError(f"mixed cover polarities in {name!r}")
        cover = BDD.FALSE
        for pattern, _ in rows:
            term = BDD.TRUE
            for ch, fb in zip(pattern, fanin_bdds):
                if ch == "1":
                    term = bdd.apply_and(term, fb)
                elif ch == "0":
                    term = bdd.apply_and(term, bdd.apply_not(fb))
                elif ch != "-":
                    raise BlifError(f"bad input literal {ch!r} in {name!r}")
            cover = bdd.apply_or(cover, term)
        if not rows:
            result = BDD.FALSE
        elif values == {"0"}:
            result = bdd.apply_not(cover)
        else:
            result = cover
        node_bdd[name] = result
        return result

    out_isfs = [ISF.complete(build(name, ())) for name in outputs]
    input_vars = [variables[name] for name in inputs]
    return MultiFunction(bdd, input_vars, out_isfs,
                         input_names=inputs, output_names=outputs)


def write_blif(func: MultiFunction, model: str = "repro") -> str:
    """Write a :class:`MultiFunction` as flat single-level BLIF.

    Don't cares are completed to 0 (BLIF has no native DC plane).
    """
    lines = [f".model {model}",
             ".inputs " + " ".join(func.input_names),
             ".outputs " + " ".join(func.output_names)]
    n = func.num_inputs
    for j, name in enumerate(func.output_names):
        lines.append(".names " + " ".join(func.input_names) + f" {name}")
        for k in range(1 << n):
            bits = [(k >> (n - 1 - i)) & 1 for i in range(n)]
            assignment = dict(zip(func.inputs, bits))
            if func.bdd.eval(func.outputs[j].lo, assignment):
                lines.append("".join(str(b) for b in bits) + " 1")
    lines.append(".end")
    return "\n".join(lines) + "\n"
