"""BLIF (Berkeley Logic Interchange Format) reading and writing.

Combinational subset: ``.model``, ``.inputs``, ``.outputs``, ``.names``
(with single-output SOP cover lines), ``.exdc``, ``.end``.  Parsing
flattens the network into per-output BDDs, which is what the
decomposition flow consumes.

An ``.exdc`` section describes a *second* network over the same primary
inputs; its outputs are the external don't-care conditions of the
like-named primary outputs.  Parsing keeps the two networks separate and
returns each output as a proper interval ``ISF(lo, hi)`` — the exact
input the paper's three-step don't-care assignment consumes.  Writing
emits one cube per BDD path (no ``2^n`` enumeration) and preserves don't
cares through an ``.exdc`` section, so parse → write → parse round-trips
both the care function and the DC set.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.bdd.manager import BDD
from repro.boolfunc.spec import ISF, MultiFunction

#: A network is a map name -> (fanin signal names, cover rows).
_Tables = Dict[str, Tuple[List[str], List[Tuple[str, str]]]]


class BlifError(ValueError):
    """Malformed BLIF text."""


def _tokenise(text: str) -> List[List[str]]:
    """Logical lines (backslash continuations folded, comments stripped)."""
    lines: List[str] = []
    pending = ""
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].rstrip()
        if line.endswith("\\"):
            pending += line[:-1] + " "
            continue
        pending += line
        if pending.strip():
            lines.append(pending.strip())
        pending = ""
    if pending.strip():
        lines.append(pending.strip())
    return [line.split() for line in lines]


def parse_blif(text: str, bdd: Optional[BDD] = None) -> MultiFunction:
    """Parse combinational BLIF into a :class:`MultiFunction`.

    ``.exdc`` don't cares surface as incomplete output intervals; without
    an ``.exdc`` section every output is completely specified.
    """
    if bdd is None:
        bdd = BDD(0)
    inputs: List[str] = []
    outputs: List[str] = []
    tables: _Tables = {}
    exdc_tables: _Tables = {}
    current_tables = tables
    current: Optional[str] = None
    in_exdc = False

    for tokens in _tokenise(text):
        head = tokens[0]
        if head == ".model":
            continue
        if head == ".inputs":
            # Tolerated but ignored inside .exdc (the DC network shares
            # the main model's primary inputs by definition).
            if not in_exdc:
                inputs.extend(tokens[1:])
            current = None
        elif head == ".outputs":
            if not in_exdc:
                outputs.extend(tokens[1:])
            current = None
        elif head == ".names":
            signals = tokens[1:]
            if not signals:
                raise BlifError(".names needs at least an output")
            current = signals[-1]
            where = ".exdc network" if in_exdc else "care network"
            if current in current_tables:
                raise BlifError(
                    f"duplicate .names for {current!r} in the {where}")
            if in_exdc and current in tables and current not in outputs:
                # Redefining a primary output inside .exdc is the whole
                # point; silently shadowing a care-network *internal*
                # signal would corrupt whichever reading we picked.
                raise BlifError(
                    f".exdc redefines care-network signal {current!r} "
                    f"(only primary outputs may appear in both)")
            current_tables[current] = (signals[:-1], [])
        elif head == ".exdc":
            if in_exdc:
                raise BlifError("nested .exdc section")
            in_exdc = True
            current_tables = exdc_tables
            current = None
        elif head == ".end":
            current = None
        elif head.startswith("."):
            if head in (".latch", ".subckt", ".gate"):
                raise BlifError(f"unsupported BLIF construct {head}")
            current = None
        else:
            if current is None:
                raise BlifError(f"cover line outside .names: {tokens}")
            fanins, rows = current_tables[current]
            if len(fanins) == 0:
                if len(tokens) != 1 or tokens[0] not in "01":
                    raise BlifError(f"bad constant row: {tokens}")
                rows.append(("", tokens[0]))
            else:
                if len(tokens) != 2:
                    raise BlifError(f"bad cover row: {tokens}")
                pattern, value = tokens
                if len(pattern) != len(fanins):
                    raise BlifError(f"cover arity mismatch: {tokens}")
                rows.append((pattern, value))

    variables = {name: bdd.add_var(name) for name in inputs}
    input_bdd: Dict[str, int] = {name: bdd.var(var)
                                 for name, var in variables.items()}

    care_nodes = dict(input_bdd)
    onsets = [_build_signal(bdd, tables, care_nodes, name, (),
                            "care network") for name in outputs]

    # The exdc network is evaluated in its own namespace: primary inputs
    # are shared, internal care signals are not visible.
    exdc_nodes = dict(input_bdd)
    out_isfs: List[ISF] = []
    for name, onset in zip(outputs, onsets):
        if name in exdc_tables:
            dc = _build_signal(bdd, exdc_tables, exdc_nodes, name, (),
                               ".exdc network")
            lo = bdd.apply_diff(onset, dc)
            out_isfs.append(ISF(lo, bdd.apply_or(lo, dc)))
        else:
            out_isfs.append(ISF.complete(onset))

    input_vars = [variables[name] for name in inputs]
    return MultiFunction(bdd, input_vars, out_isfs,
                         input_names=inputs, output_names=outputs)


def _build_signal(bdd: BDD, tables: _Tables, node_bdd: Dict[str, int],
                  name: str, trail: tuple, where: str) -> int:
    """Flatten one signal of one network (care or exdc) into a BDD."""
    if name in node_bdd:
        return node_bdd[name]
    if name not in tables:
        raise BlifError(f"undefined signal {name!r} in the {where}")
    if name in trail:
        raise BlifError(f"combinational cycle through {name!r}")
    fanins, rows = tables[name]
    fanin_bdds = [_build_signal(bdd, tables, node_bdd, f,
                                trail + (name,), where) for f in fanins]
    # The cover lists either onset rows (value 1) or offset rows
    # (value 0); mixing is not allowed by BLIF.
    values = {value for _, value in rows}
    if values - {"0", "1"}:
        raise BlifError(f"bad cover value in {name!r}")
    if len(values) > 1:
        raise BlifError(f"mixed cover polarities in {name!r}")
    cover = BDD.FALSE
    for pattern, _ in rows:
        term = BDD.TRUE
        for ch, fb in zip(pattern, fanin_bdds):
            if ch == "1":
                term = bdd.apply_and(term, fb)
            elif ch == "0":
                term = bdd.apply_and(term, bdd.apply_not(fb))
            elif ch != "-":
                raise BlifError(f"bad input literal {ch!r} in {name!r}")
        cover = bdd.apply_or(cover, term)
    if not rows:
        result = BDD.FALSE
    elif values == {"0"}:
        result = bdd.apply_not(cover)
    else:
        result = cover
    node_bdd[name] = result
    return result


def _bdd_cubes(bdd: BDD, f: int) -> Iterator[Dict[int, int]]:
    """One ``{var: value}`` cube per BDD path from ``f`` to TRUE.

    The cube count is bounded by the number of one-paths (never more
    than the minterm count, usually far fewer) — unlike minterm
    enumeration it does not scale with ``2^n``.
    """
    if f == BDD.FALSE:
        return
    stack: List[Tuple[int, Dict[int, int]]] = [(f, {})]
    while stack:
        node, partial = stack.pop()
        if node == BDD.TRUE:
            yield partial
            continue
        var = bdd.var_of(node)
        for value, child in ((0, bdd.low(node)), (1, bdd.high(node))):
            if child != BDD.FALSE:
                cube = dict(partial)
                cube[var] = value
                stack.append((child, cube))


def _emit_cover(bdd: BDD, f: int, out_name: str,
                input_names: List[str], var_pos: Dict[int, int],
                lines: List[str]) -> None:
    """Append one ``.names`` table realising ``f`` over the inputs."""
    lines.append(".names " + " ".join(input_names) + f" {out_name}")
    n = len(input_names)
    for cube in _bdd_cubes(bdd, f):
        pattern = ["-"] * n
        for var, value in cube.items():
            pos = var_pos.get(var)
            if pos is None:
                raise BlifError(
                    f"output {out_name!r} depends on variable {var} "
                    f"outside the declared inputs")
            pattern[pos] = "1" if value else "0"
        lines.append("".join(pattern) + " 1")


def write_blif(func: MultiFunction, model: str = "repro") -> str:
    """Write a :class:`MultiFunction` as flat single-level BLIF.

    Covers are cubes read off the BDD one-paths (no ``2^n`` row
    enumeration), and incompletely specified outputs keep their don't
    cares via an ``.exdc`` section.
    """
    bdd = func.bdd
    var_pos = {v: i for i, v in enumerate(func.inputs)}
    lines = [f".model {model}",
             ".inputs " + " ".join(func.input_names),
             ".outputs " + " ".join(func.output_names)]
    for name, isf in zip(func.output_names, func.outputs):
        _emit_cover(bdd, isf.lo, name, func.input_names, var_pos, lines)
    exdc_lines: List[str] = []
    for name, isf in zip(func.output_names, func.outputs):
        if not isf.is_complete():
            _emit_cover(bdd, isf.dc_set(bdd), name, func.input_names,
                        var_pos, exdc_lines)
    if exdc_lines:
        lines.append(".exdc")
        lines.extend(exdc_lines)
    lines.append(".end")
    return "\n".join(lines) + "\n"
