"""Cube and cube-list representations (the PLA view of a function)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.bdd.manager import BDD


@dataclass(frozen=True)
class Cube:
    """A product term over positional inputs.

    ``inputs`` uses one character per variable: ``'0'``, ``'1'`` or
    ``'-'`` (don't care / missing literal).  ``outputs`` uses one
    character per output: ``'1'`` (cube belongs to onset), ``'0'`` or
    ``'~'`` (no statement), ``'d'`` / ``'-'`` (don't care), ``'r'``
    (offset, for ``.type fr`` PLAs).
    """

    inputs: str
    outputs: str

    def __post_init__(self):
        for ch in self.inputs:
            if ch not in "01-":
                raise ValueError(f"bad input literal {ch!r}")
        for ch in self.outputs:
            if ch not in "01-d~r":
                raise ValueError(f"bad output literal {ch!r}")

    def to_bdd(self, bdd: BDD, variables: Sequence[int]) -> int:
        """BDD of the product term over the given variables."""
        if len(variables) != len(self.inputs):
            raise ValueError("variable count mismatch")
        literals = {}
        for var, ch in zip(variables, self.inputs):
            if ch == "1":
                literals[var] = 1
            elif ch == "0":
                literals[var] = 0
        return bdd.cube(literals)

    def contains(self, bits: Sequence[int]) -> bool:
        """Does the cube cover this input assignment?"""
        return all(ch == "-" or int(ch) == b
                   for ch, b in zip(self.inputs, bits))


class CubeList:
    """An ordered list of cubes with shared arity — one PLA matrix."""

    def __init__(self, num_inputs: int, num_outputs: int,
                 cubes: Iterable[Cube] = ()) -> None:
        self.num_inputs = num_inputs
        self.num_outputs = num_outputs
        self.cubes: List[Cube] = []
        for cube in cubes:
            self.append(cube)

    def append(self, cube: Cube) -> None:
        """Add a cube (arity-checked)."""
        if len(cube.inputs) != self.num_inputs:
            raise ValueError("cube input arity mismatch")
        if len(cube.outputs) != self.num_outputs:
            raise ValueError("cube output arity mismatch")
        self.cubes.append(cube)

    def __len__(self) -> int:
        return len(self.cubes)

    def __iter__(self):
        return iter(self.cubes)

    def to_sets(self, bdd: BDD, variables: Sequence[int],
                pla_type: str = "fd") -> List[Tuple[int, int]]:
        """Per-output (onset, dcset) BDD pairs.

        ``pla_type`` follows espresso: ``fd`` (default) — ``1`` adds to
        the onset, ``d``/``-`` to the dc-set, everything else is offset;
        ``fr`` — ``1`` adds to the onset, ``r``/``0`` to the offset,
        and the rest of the space is the dc-set; ``f`` — ``1`` is onset,
        everything uncovered is offset.
        """
        if pla_type not in ("fd", "fr", "f"):
            raise ValueError(f"unsupported PLA type {pla_type!r}")
        onsets = [BDD.FALSE] * self.num_outputs
        dcsets = [BDD.FALSE] * self.num_outputs
        offsets = [BDD.FALSE] * self.num_outputs
        for cube in self.cubes:
            cube_bdd = None
            for j, ch in enumerate(cube.outputs):
                if ch in "0~":
                    continue
                if cube_bdd is None:
                    cube_bdd = cube.to_bdd(bdd, variables)
                if ch == "1":
                    onsets[j] = bdd.apply_or(onsets[j], cube_bdd)
                elif ch in "d-":
                    dcsets[j] = bdd.apply_or(dcsets[j], cube_bdd)
                elif ch == "r":
                    offsets[j] = bdd.apply_or(offsets[j], cube_bdd)
        result = []
        for j in range(self.num_outputs):
            if pla_type == "fr":
                dc = bdd.apply_not(bdd.apply_or(onsets[j], offsets[j]))
            else:
                dc = bdd.apply_diff(dcsets[j], onsets[j])
            result.append((onsets[j], dc))
        return result
