"""Boolean function representations.

* :class:`~repro.boolfunc.spec.ISF` — incompletely specified single-output
  function as an interval ``[lo, hi]`` of BDDs (``lo`` = onset,
  ``hi`` = onset + don't-care set).
* :class:`~repro.boolfunc.spec.MultiFunction` — a multi-output function
  (each output an :class:`ISF`) over a shared input variable list.
* :mod:`repro.boolfunc.cube` / :mod:`repro.boolfunc.pla` /
  :mod:`repro.boolfunc.blif` — cube lists and espresso-PLA / BLIF parsing
  and writing.
"""

from repro.boolfunc.spec import ISF, MultiFunction
from repro.boolfunc.cube import Cube, CubeList
from repro.boolfunc.pla import parse_pla, write_pla
from repro.boolfunc.blif import parse_blif, write_blif

__all__ = [
    "ISF",
    "MultiFunction",
    "Cube",
    "CubeList",
    "parse_pla",
    "write_pla",
    "parse_blif",
    "write_blif",
]
