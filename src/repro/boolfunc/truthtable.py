"""Small truth-table utilities shared by tests, benches and examples.

Tables follow the package-wide MSB-first convention: for variables
``(v0, v1, .., v{n-1})``, entry ``k`` is the value under the assignment
where ``v0`` receives the most significant bit of ``k``.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Sequence, Tuple


def table_from_int(value: int, nvars: int) -> List[int]:
    """Truth table from an integer bit mask (bit ``k`` = entry ``k``)."""
    size = 1 << nvars
    if value >= 1 << size:
        raise ValueError("mask has more bits than the table")
    return [(value >> k) & 1 for k in range(size)]


def table_to_int(table: Sequence[int]) -> int:
    """Inverse of :func:`table_from_int`."""
    value = 0
    for k, bit in enumerate(table):
        if bit:
            value |= 1 << k
    return value


def table_from_callable(fn: Callable[..., int], nvars: int) -> List[int]:
    """Tabulate a Python predicate over all assignments (MSB first)."""
    out = []
    for k in range(1 << nvars):
        bits = [(k >> (nvars - 1 - i)) & 1 for i in range(nvars)]
        out.append(1 if fn(*bits) else 0)
    return out


def minterms(table: Sequence[int]) -> List[int]:
    """Indices of the onset entries."""
    return [k for k, bit in enumerate(table) if bit]


def cofactor_table(table: Sequence[int], var_index: int,
                   value: int) -> List[int]:
    """Truth table of the cofactor w.r.t. the ``var_index``-th variable."""
    size = len(table)
    nvars = size.bit_length() - 1
    if 1 << nvars != size:
        raise ValueError("table length must be a power of two")
    if not 0 <= var_index < nvars:
        raise ValueError("variable index out of range")
    out = []
    for k in range(size):
        if ((k >> (nvars - 1 - var_index)) & 1) == value:
            out.append(table[k])
    return out


def format_table(table: Sequence[int],
                 names: Optional[Sequence[str]] = None) -> str:
    """Human-readable truth table (one row per assignment)."""
    size = len(table)
    nvars = size.bit_length() - 1
    names = list(names) if names else [f"x{i}" for i in range(nvars)]
    header = " ".join(names) + " | f"
    lines = [header, "-" * len(header)]
    for k in range(size):
        bits = " ".join(
            str((k >> (nvars - 1 - i)) & 1) for i in range(nvars))
        lines.append(f"{bits} | {table[k]}")
    return "\n".join(lines)


def iter_assignments(nvars: int) -> Iterator[Tuple[int, ...]]:
    """All assignments in table order (MSB first)."""
    for k in range(1 << nvars):
        yield tuple((k >> (nvars - 1 - i)) & 1 for i in range(nvars))


def pack64(table: Sequence[int]) -> List[int]:
    """Pack a 0/1 table into 64-bit words, minterm ``k`` at word
    ``k // 64``, bit ``k % 64``.

    Pure-Python reference for the packed layout used by
    :mod:`repro.kernel.bitset` — the kernel's numpy packing must produce
    identical words on every platform, and the differential tests pin
    that with this function.  Tables shorter than a multiple of 64 are
    zero-padded in the final word.
    """
    words = [0] * ((len(table) + 63) // 64)
    for k, bit in enumerate(table):
        if bit:
            words[k >> 6] |= 1 << (k & 63)
    return words


def unpack64(words: Sequence[int], nbits: int) -> List[int]:
    """Inverse of :func:`pack64` for the first ``nbits`` minterms."""
    if nbits > 64 * len(words):
        raise ValueError("nbits exceeds the packed capacity")
    return [(words[k >> 6] >> (k & 63)) & 1 for k in range(nbits)]
