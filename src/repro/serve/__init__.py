"""``repro serve`` — the async decomposition service.

A daemon that turns the batch runtime into a long-running service: a
persistent worker pool with warm BDD managers, a read-through result
cache with single-flight request coalescing, weighted-fair queueing
with per-tenant admission control, NDJSON progress streaming and a
``/metrics`` endpoint — over a unix socket and/or a small HTTP/1.1
front-end.  See ``docs/SERVICE.md`` for the protocol and the failure
matrix.

Layering::

    daemon.py    sockets, framing, HTTP, chaos sites, shutdown
    service.py   cache / single-flight / admission / retry-degrade
    queueing.py  weighted-fair queue (virtual-time WFQ)
    protocol.py  request grammar + typed error taxonomy

Quickstart::

    repro serve --socket /tmp/repro.sock --port 8787 --cache
    printf '{"source": "rd84"}\\n' | nc -U /tmp/repro.sock
"""

from repro.serve.daemon import ServeDaemon
from repro.serve.protocol import (
    BadFrame,
    BadRequest,
    BadSource,
    Overloaded,
    ServeError,
    ServeRequest,
    ShuttingDown,
    TooLarge,
    parse_request,
)
from repro.serve.queueing import FairQueue, QueueFull
from repro.serve.service import DecompositionService

__all__ = [
    "ServeDaemon",
    "DecompositionService",
    "FairQueue",
    "QueueFull",
    "ServeError",
    "ServeRequest",
    "BadFrame",
    "BadRequest",
    "BadSource",
    "Overloaded",
    "ShuttingDown",
    "TooLarge",
    "parse_request",
]
