"""Request/response protocol of the decomposition service.

One request is one JSON object (NDJSON-framed on the unix socket, the
POST body over HTTP)::

    {"source": "rd84"}                                   # minimal
    {"id": "q1", "tenant": "ci", "flow": "compare",
     "source": {"kind": "blif", "body": ".model ..."},
     "config": {"use_dontcares": true}, "stream": true}

Responses are NDJSON event frames; a non-streaming request receives
only the final frame.  Every frame carries an ``event`` key:
``accepted``, ``cache``, ``coalesced``, ``queued``, ``dispatch``,
``beat``, ``retry``, ``shed``, ``result`` and ``error`` (see
``docs/SERVICE.md`` for the full schemas).

Parsing is *defensive by contract*: every malformed, oversized or
unauthorized request maps to a typed :class:`ServeError` subclass with
a stable machine-readable ``code`` (and an HTTP status for the HTTP
front-end) — the daemon converts them into ``error`` frames and keeps
serving.  Nothing a client sends may take the daemon down.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

#: Frame/body ceiling (bytes) unless overridden per daemon.
MAX_FRAME_ENV = "REPRO_SERVE_MAX_FRAME_BYTES"
DEFAULT_MAX_FRAME_BYTES = 4 * 1024 * 1024

#: Flows the service accepts (same set as the batch tier).
FLOWS = ("map", "compare")

#: Engine-config keys a request may set, with their validators.
_CONFIG_FIELDS: Dict[str, Callable[[Any], bool]] = {
    "use_dontcares": lambda v: isinstance(v, bool),
    "verify": lambda v: isinstance(v, bool),
    "time_budget": lambda v: isinstance(v, (int, float)) and v >= 0,
    "node_budget": lambda v: isinstance(v, int) and v >= 0,
}

#: Hard ceiling on per-request crash retries.
MAX_RETRIES = 5


def default_max_frame_bytes() -> int:
    raw = os.environ.get(MAX_FRAME_ENV, "")
    try:
        return max(1024, int(raw)) if raw else DEFAULT_MAX_FRAME_BYTES
    except ValueError:
        return DEFAULT_MAX_FRAME_BYTES


# ---------------------------------------------------------------------
# Typed errors
# ---------------------------------------------------------------------

class ServeError(Exception):
    """Base of the typed request-failure taxonomy.

    ``code`` is the stable machine-readable discriminator clients and
    tests key on; ``http_status`` is what the HTTP front-end replies.
    """

    code = "internal"
    http_status = 500

    def as_frame(self, request_id: Optional[str] = None
                 ) -> Dict[str, Any]:
        frame: Dict[str, Any] = {"event": "error", "error": self.code,
                                 "message": str(self)}
        if request_id is not None:
            frame["id"] = request_id
        return frame


class BadFrame(ServeError):
    """The wire frame is not parseable JSON (truncated, binary, ...)."""

    code = "bad-frame"
    http_status = 400


class BadRequest(ServeError):
    """Structurally invalid request object."""

    code = "bad-request"
    http_status = 400


class BadSource(ServeError):
    """The source descriptor or its body does not parse/build."""

    code = "bad-source"
    http_status = 422


class TooLarge(ServeError):
    """Frame or inline body over the configured byte ceiling."""

    code = "too-large"
    http_status = 413


class Overloaded(ServeError):
    """Admission control rejected the request (queue full)."""

    code = "overloaded"
    http_status = 503


class ShuttingDown(ServeError):
    """The daemon is draining and accepts no new work."""

    code = "shutting-down"
    http_status = 503


# ---------------------------------------------------------------------
# Requests
# ---------------------------------------------------------------------

@dataclass
class ServeRequest:
    """A validated decomposition request."""

    source: Dict[str, Any]
    flow: str = "map"
    tenant: str = "default"
    id: Optional[str] = None
    config: Dict[str, Any] = field(default_factory=dict)
    stream: bool = False
    include_blif: bool = False
    timeout: Optional[float] = None
    retries: Optional[int] = None
    test_hook: Optional[str] = None

    def job_config(self) -> Dict[str, Any]:
        """The job/cache config dict, normalized exactly like the batch
        CLI so identical work shares cache entries across tiers.

        ``compare`` runs both drivers, so ``use_dontcares`` never enters
        its config; defaults (``verify=True``) are omitted rather than
        written, matching ``repro map --cache`` keys.
        """
        config: Dict[str, Any] = {}
        if self.flow != "compare":
            config["use_dontcares"] = self.config.get("use_dontcares",
                                                      True)
        if self.config.get("verify", True) is False:
            config["verify"] = False
        for key in ("time_budget", "node_budget"):
            if self.config.get(key):
                config[key] = self.config[key]
        return config


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise BadRequest(message)


def _parse_source(raw: Any, *, allow_files: bool,
                  max_body_bytes: int) -> Dict[str, Any]:
    """Normalize a request source into a jobspec descriptor."""
    from repro.runtime import jobspec

    if isinstance(raw, str):
        _require(0 < len(raw) <= 512, "source string must be 1-512 chars")
        if "!" in raw:
            raise BadRequest(
                "manifest test hooks ('!crash'/'!hang') are not part of "
                "the request grammar; use the 'test_hook' field")
        try:
            source = jobspec.parse_manifest_entry(raw)["source"]
        except ValueError as exc:
            raise BadSource(str(exc))
        if source["kind"] in ("pla", "blif") and not allow_files:
            raise BadSource(
                "file-backed sources are disabled on this daemon "
                "(start with --allow-files to serve pla:/blif: paths)")
        return source
    if not isinstance(raw, dict):
        raise BadRequest("source must be a string or an object")
    kind = raw.get("kind")
    if kind in ("pla", "blif"):
        body = raw.get("body")
        if body is None:
            if not allow_files:
                raise BadSource(
                    "file-backed sources are disabled on this daemon "
                    "(start with --allow-files, or inline the text via "
                    "'body')")
            path = raw.get("path")
            _require(isinstance(path, str) and path,
                     f"{kind} source needs a 'body' or 'path' string")
            return {"kind": kind, "path": path}
        _require(isinstance(body, str), "'body' must be a string")
        if len(body.encode("utf-8", "replace")) > max_body_bytes:
            raise TooLarge(
                f"inline {kind} body over the {max_body_bytes}-byte "
                f"ceiling")
        return {"kind": kind, "body": body}
    if kind in ("benchmark", "generator"):
        name = raw.get("name")
        _require(isinstance(name, str) and 0 < len(name) <= 128,
                 f"{kind} source needs a 'name' string")
        return {"kind": kind, "name": name}
    if kind == "synthetic":
        try:
            inputs = int(raw.get("inputs"))
            outputs = int(raw.get("outputs"))
        except (TypeError, ValueError):
            raise BadRequest(
                "synthetic source needs integer 'inputs'/'outputs'")
        _require(isinstance(raw.get("name"), str), "synthetic source "
                 "needs a 'name' string")
        _require(1 <= inputs <= 64 and 1 <= outputs <= 64,
                 "synthetic inputs/outputs must be in [1, 64]")
        source = {"kind": "synthetic", "name": raw["name"],
                  "inputs": inputs, "outputs": outputs}
        if raw.get("seed") is not None:
            source["seed"] = str(raw["seed"])
        return source
    raise BadRequest(
        f"unknown source kind {kind!r} (use a string entry, or an "
        f"object with kind pla/blif/benchmark/generator/synthetic)")


def parse_request(obj: Any, *, allow_files: bool = False,
                  allow_test_hooks: bool = False,
                  max_body_bytes: Optional[int] = None) -> ServeRequest:
    """Validate a decoded JSON object into a :class:`ServeRequest`.

    Raises a typed :class:`ServeError` on every malformed shape; never
    lets an arbitrary exception escape for client-controlled input.
    """
    if max_body_bytes is None:
        max_body_bytes = default_max_frame_bytes()
    if not isinstance(obj, dict):
        raise BadRequest("request must be a JSON object")
    unknown = set(obj) - {"id", "tenant", "flow", "source", "config",
                          "stream", "include_blif", "timeout", "retries",
                          "test_hook"}
    _require(not unknown,
             f"unknown request field(s): {', '.join(sorted(unknown))}")
    request_id = obj.get("id")
    if request_id is not None:
        _require(isinstance(request_id, str) and 0 < len(request_id) <= 128,
                 "'id' must be a 1-128 char string")
    tenant = obj.get("tenant", "default")
    _require(isinstance(tenant, str) and 0 < len(tenant) <= 64,
             "'tenant' must be a 1-64 char string")
    flow = obj.get("flow", "map")
    _require(flow in FLOWS, f"unknown flow {flow!r} (use map or compare)")
    if "source" not in obj:
        raise BadRequest("request needs a 'source'")
    source = _parse_source(obj["source"], allow_files=allow_files,
                           max_body_bytes=max_body_bytes)
    config = obj.get("config", {})
    _require(isinstance(config, dict), "'config' must be an object")
    for key, value in config.items():
        validator = _CONFIG_FIELDS.get(key)
        if validator is None:
            raise BadRequest(
                f"unknown config key {key!r} (known: "
                f"{', '.join(sorted(_CONFIG_FIELDS))})")
        _require(validator(value), f"bad value for config key {key!r}")
    stream = obj.get("stream", False)
    _require(isinstance(stream, bool), "'stream' must be a boolean")
    include_blif = obj.get("include_blif", False)
    _require(isinstance(include_blif, bool),
             "'include_blif' must be a boolean")
    timeout = obj.get("timeout")
    if timeout is not None:
        _require(isinstance(timeout, (int, float)) and 0 < timeout <= 86400,
                 "'timeout' must be in (0, 86400] seconds")
        timeout = float(timeout)
    retries = obj.get("retries")
    if retries is not None:
        _require(isinstance(retries, int)
                 and 0 <= retries <= MAX_RETRIES,
                 f"'retries' must be an integer in [0, {MAX_RETRIES}]")
    test_hook = obj.get("test_hook")
    if test_hook is not None:
        if not allow_test_hooks:
            raise BadRequest(
                "'test_hook' is disabled on this daemon (start with "
                "--allow-test-hooks; chaos/CI only)")
        _require(isinstance(test_hook, str) and test_hook.split(":")[0]
                 in ("crash", "hang"), "'test_hook' must be "
                 "'crash[:n]' or 'hang[:seconds]'")
    return ServeRequest(source=source, flow=flow, tenant=tenant,
                        id=request_id, config=dict(config),
                        stream=stream, include_blif=include_blif,
                        timeout=timeout, retries=retries,
                        test_hook=test_hook)


# ---------------------------------------------------------------------
# Result shaping
# ---------------------------------------------------------------------

def strip_record(record: Optional[Dict[str, Any]],
                 include_blif: bool) -> Optional[Dict[str, Any]]:
    """Drop BLIF bodies from a result record unless requested (same
    policy as batch JSONL rows)."""
    if record is None or include_blif:
        return record
    slim = {k: v for k, v in record.items() if k != "blif"}
    for driver in ("mulopII", "mulop_dc"):
        if isinstance(slim.get(driver), dict):
            slim[driver] = {k: v for k, v in slim[driver].items()
                            if k != "blif"}
    return slim
