"""The decomposition service core: requests -> flights -> pool.

This module is the heart of ``repro serve``.  It owns a persistent
:class:`~repro.runtime.pool.WorkerPool` (warm BDD managers reused
across requests), a read-through :class:`~repro.runtime.cache
.ResultCache`, a weighted-fair :class:`~repro.serve.queueing.FairQueue`
and the single-flight table that collapses identical concurrent
requests onto one computation.

Request lifecycle (all on the daemon's event loop)::

    handle(request, emit)
      └─ build function parent-side (executor, faults suppressed)
      └─ cache.get(key)        -> hit: reply, zero worker dispatches
      └─ single-flight lookup  -> join an identical in-flight request
      └─ admission control     -> queue full: shed to the verified
      │                           trivial mapping, or reject "overloaded"
      └─ FairQueue.push        -> _pump dispatches when a pool slot frees
            └─ _run_flight: pool.submit, crash retries w/ backoff,
               timeout/hang -> degrade, cache.put on ok, broadcast

The failure ladder mirrors the batch scheduler exactly — crash retried
then degraded, timeout/hang/exception degraded without retry, the
degradation fallback runs under :func:`repro.faults.suppressed` — so a
request served by the daemon settles to the same record the batch tier
would produce, bit for bit (the unit of determinism is the job, not the
process).

The ``server.dispatch`` fault site fires as a job is handed to the
pool; an injected raise there is contained as if the worker had
crashed (retry, then degrade) — chaos at the dispatch boundary must
never take the daemon down.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import faults
from repro.runtime import jobspec
from repro.runtime.cache import ResultCache, cache_key
from repro.runtime.pool import (
    JobHung,
    JobTimeout,
    PoolClosed,
    ProgressEvent,
    WorkerCrash,
    WorkerPool,
)
from repro.runtime.scheduler import degraded_record
from repro.serve.protocol import (
    MAX_RETRIES,
    Overloaded,
    ServeError,
    ServeRequest,
    ShuttingDown,
    strip_record,
)
from repro.serve.queueing import DEFAULT_DEPTH, FairQueue, QueueFull

#: A frame consumer: called on the event loop with JSON-able dicts.
EmitFn = Callable[[Dict[str, Any]], None]


@dataclass
class _Subscriber:
    request: ServeRequest
    emit: EmitFn
    started: float


@dataclass
class _Flight:
    """One unit of real work; N coalesced requests may ride it."""

    key: str
    job: Dict[str, Any]
    func: Any
    subscribers: List[_Subscriber] = field(default_factory=list)
    done: "asyncio.Future[Tuple[str, Optional[dict], Optional[str]]]" = None  # type: ignore[assignment]
    retries_used: int = 0
    beats: int = 0
    dispatches: int = 0

    @property
    def tenant(self) -> str:
        return self.subscribers[0].request.tenant

    def broadcast(self, frame: Dict[str, Any]) -> None:
        """Progress frame to every *streaming* subscriber."""
        for sub in self.subscribers:
            if sub.request.stream:
                out = dict(frame)
                if sub.request.id is not None:
                    out["id"] = sub.request.id
                try:
                    sub.emit(out)
                except Exception:  # noqa: BLE001 — a dead client is not our problem
                    pass

    def on_pool_event(self, event: ProgressEvent) -> None:
        if event.kind == "beat":
            self.beats = max(self.beats, event.beats)
        frame = event.as_dict()
        frame["job_id"] = self.job["job_id"]
        self.broadcast(frame)


class DecompositionService:
    """Multiplex decomposition requests onto a persistent worker pool."""

    def __init__(self, *, workers: Optional[int] = None,
                 cache: Optional[ResultCache] = None,
                 queue_depth: int = DEFAULT_DEPTH,
                 shed: str = "degrade",
                 timeout: Optional[float] = None,
                 retries: int = 1,
                 retry_backoff_s: float = 0.25,
                 heartbeat_s: float = 1.0,
                 hang_grace_s: Optional[float] = None,
                 weights: Optional[Dict[str, float]] = None,
                 warm_limit: Optional[int] = None) -> None:
        if shed not in ("degrade", "reject"):
            raise ValueError("shed must be 'degrade' or 'reject'")
        self.pool = WorkerPool(workers, heartbeat_s=heartbeat_s,
                               hang_grace_s=hang_grace_s,
                               default_timeout=timeout,
                               warm_limit=warm_limit)
        self.cache = cache
        self.queue = FairQueue(depth=queue_depth)
        for tenant, weight in (weights or {}).items():
            self.queue.set_weight(tenant, weight)
        self.shed = shed
        self.timeout = timeout
        self.retries = max(0, min(retries, MAX_RETRIES))
        self.retry_backoff_s = retry_backoff_s
        self._inflight: Dict[str, _Flight] = {}
        self._busy = 0
        self._draining = False
        self._flight_tasks: "set[asyncio.Task]" = set()
        self.started_at = time.time()
        self.counters = {
            "requests": 0, "ok": 0, "degraded": 0, "failed": 0,
            "errors": 0, "cache_hits": 0, "coalesced": 0, "shed": 0,
            "rejected": 0, "retries": 0,
        }

    # -- public entry ---------------------------------------------------

    async def handle(self, request: ServeRequest,
                     emit: EmitFn) -> Dict[str, Any]:
        """Serve one validated request.

        ``emit`` receives progress frames when the request streams; the
        returned dict is the final ``result`` frame.  Typed
        :class:`ServeError` failures are raised for the daemon to shape
        into ``error`` frames; nothing else escapes.
        """
        self.counters["requests"] += 1
        if self._draining:
            raise ShuttingDown("daemon is draining; retry elsewhere")
        started = time.monotonic()
        loop = asyncio.get_running_loop()
        job = jobspec.make_job(request.source, job_id=request.id or None,
                              flow=request.flow,
                              config=request.job_config(),
                              test_hook=request.test_hook)

        # Parent-side build: same suppressed-faults policy as the batch
        # scheduler's cache path; a bad source is the client's error.
        def build():
            with faults.suppressed():
                func = jobspec.build_function(job["source"])
                return func, func.canonical_key()
        try:
            func, func_key = await loop.run_in_executor(None, build)
        except Exception as exc:  # noqa: BLE001 — bad source: typed reply
            self.counters["errors"] += 1
            from repro.serve.protocol import BadSource
            raise BadSource(f"{type(exc).__name__}: {exc}") from exc
        key = cache_key(func_key, job["flow"], job["config"])

        # Read-through cache: a repeat request never touches a worker.
        if self.cache is not None:
            record = self.cache.get(key)
            if record is not None:
                self.counters["cache_hits"] += 1
                self.counters["ok"] += 1
                if request.stream:
                    self._emit_to(request, emit, {"event": "cache",
                                                  "key": key[:16]})
                return self._final(request, "ok", record, None,
                                   cache_hit=True, started=started)

        subscriber = _Subscriber(request, emit, started)

        # Single-flight: identical concurrent work runs once.  Chaos
        # requests (test_hook set) always fly alone so an injected
        # crash cannot leak into an innocent rider's reply.
        flight = self._inflight.get(key) if request.test_hook is None \
            else None
        if flight is not None:
            self.counters["coalesced"] += 1
            flight.subscribers.append(subscriber)
            if request.stream:
                self._emit_to(request, emit,
                              {"event": "coalesced",
                               "riders": len(flight.subscribers)})
            status, record, error = await asyncio.shield(flight.done)
            self._count_status(status)
            return self._final(request, status, record, error,
                               started=started)

        flight = _Flight(key=key, job=job, func=func,
                         subscribers=[subscriber],
                         done=loop.create_future())
        if request.test_hook is None:
            self._inflight[key] = flight

        # Admission control: bounded queues, explicit outcomes.
        try:
            self.queue.push(request.tenant, flight)
        except QueueFull:
            self._inflight.pop(key, None)
            if self.shed == "reject":
                self.counters["rejected"] += 1
                raise Overloaded(
                    f"tenant {request.tenant!r} queue is full") from None
            # Load-shed: serve the verified trivial mapping instead of
            # queueing unboundedly — degraded beats stalled.
            self.counters["shed"] += 1
            if request.stream:
                self._emit_to(request, emit,
                              {"event": "shed", "reason": "queue full"})
            status, record, error = await self._degrade(
                loop, job, func, "load shed: queue full")
            self._count_status(status)
            return self._final(request, status, record, error,
                               started=started)

        if request.stream:
            self._emit_to(request, emit,
                          {"event": "queued",
                           "depth": self.queue.depth_of(request.tenant)})
        self._pump(loop)
        status, record, error = await asyncio.shield(flight.done)
        self._count_status(status)
        return self._final(request, status, record, error,
                           started=started)

    # -- dispatch pump --------------------------------------------------

    def _pump(self, loop: asyncio.AbstractEventLoop) -> None:
        """Start flights while pool slots are free, in WFQ order."""
        while self._busy < self.pool.workers:
            flight = self.queue.pop()
            if flight is None:
                return
            self._busy += 1
            task = loop.create_task(self._fly(loop, flight))
            self._flight_tasks.add(task)
            task.add_done_callback(self._flight_tasks.discard)

    async def _fly(self, loop: asyncio.AbstractEventLoop,
                   flight: _Flight) -> None:
        try:
            outcome = await self._run_flight(loop, flight)
        except Exception as exc:  # noqa: BLE001 — never lose a waiter
            outcome = ("failed", None,
                       f"internal: {type(exc).__name__}: {exc}")
        finally:
            self._busy -= 1
            self._inflight.pop(flight.key, None)
        if not flight.done.done():
            flight.done.set_result(outcome)
        self._pump(loop)

    async def _run_flight(self, loop: asyncio.AbstractEventLoop,
                          flight: _Flight
                          ) -> Tuple[str, Optional[dict], Optional[str]]:
        job = flight.job
        request = flight.subscribers[0].request
        timeout = request.timeout if request.timeout is not None \
            else self.timeout
        retries = request.retries if request.retries is not None \
            else self.retries
        # Warm-memo key: ship the wire dump so repeat sources reuse an
        # already-built function (and its hot BDD manager) in-worker.
        job.setdefault("wire", flight.func.to_wire())

        def sink(event: ProgressEvent) -> None:
            # Pool dispatcher thread -> event loop marshalling.
            loop.call_soon_threadsafe(flight.on_pool_event, event)

        attempt = 0
        while True:
            attempt += 1
            job["attempt"] = attempt  # crash:n hooks count per attempt
            try:
                # Chaos boundary: an injected raise here is contained
                # exactly like a worker crash (retry, then degrade).
                faults.fault_point("server.dispatch",
                                   job["job_id"].encode("utf-8"))
                flight.dispatches += 1
                future = self.pool.submit(job, timeout=timeout,
                                          on_event=sink)
                payload = await asyncio.wrap_future(future)
            except (WorkerCrash, faults.FaultInjected,
                    MemoryError) as exc:
                if attempt <= retries:
                    flight.retries_used += 1
                    self.counters["retries"] += 1
                    flight.broadcast({"event": "retry",
                                      "job_id": job["job_id"],
                                      "attempt": attempt + 1,
                                      "detail": str(exc)})
                    await asyncio.sleep(
                        self.retry_backoff_s * attempt)
                    continue
                return await self._degrade(
                    loop, job, flight.func,
                    f"{exc}; retries exhausted")
            except (JobTimeout, JobHung) as exc:
                # Deterministic failure class: no retry, degrade.
                return await self._degrade(loop, job, flight.func,
                                           str(exc))
            except PoolClosed:
                return ("failed", None, "pool closed during drain")
            if payload.get("status") == "ok":
                record = payload["result"]
                if self.cache is not None:
                    self.cache.put(flight.key, record)
                return ("ok", record, None)
            # Worker raised (or verification mismatch): deterministic,
            # degrade rather than retry — same policy as batch.
            return await self._degrade(
                loop, job, flight.func,
                payload.get("error", "job failed"))

    async def _degrade(self, loop: asyncio.AbstractEventLoop,
                       job: Dict[str, Any], func: Any, reason: str
                       ) -> Tuple[str, Optional[dict], Optional[str]]:
        def fallback():
            with faults.suppressed():
                return degraded_record(job, func=func)
        try:
            record = await loop.run_in_executor(None, fallback)
        except Exception as exc:  # noqa: BLE001 — even fallback failed
            return ("failed", None,
                    f"{reason}; fallback failed: "
                    f"{type(exc).__name__}: {exc}")
        return ("degraded", record, reason)

    # -- shaping/accounting ---------------------------------------------

    @staticmethod
    def _emit_to(request: ServeRequest, emit: EmitFn,
                 frame: Dict[str, Any]) -> None:
        if request.id is not None:
            frame = {**frame, "id": request.id}
        try:
            emit(frame)
        except Exception:  # noqa: BLE001
            pass

    def _count_status(self, status: str) -> None:
        self.counters[status if status in ("ok", "degraded", "failed")
                      else "failed"] += 1

    @staticmethod
    def _final(request: ServeRequest, status: str,
               record: Optional[dict], error: Optional[str], *,
               cache_hit: bool = False,
               started: float = 0.0) -> Dict[str, Any]:
        frame: Dict[str, Any] = {
            "event": "result",
            "status": status,
            "flow": request.flow,
            "cache_hit": cache_hit,
            "elapsed_s": round(time.monotonic() - started, 6),
            "result": strip_record(record, request.include_blif),
        }
        if error is not None:
            frame["error"] = error
        if request.id is not None:
            frame["id"] = request.id
        return frame

    # -- lifecycle/observability ----------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining

    async def drain(self, timeout: float = 30.0) -> None:
        """Stop admitting, let in-flight work settle, stop the pool."""
        self._draining = True
        deadline = time.monotonic() + timeout
        while (self._flight_tasks or len(self.queue)) \
                and time.monotonic() < deadline:
            self._pump(asyncio.get_running_loop())
            await asyncio.sleep(0.02)
        for task in list(self._flight_tasks):
            task.cancel()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None, lambda: self.pool.shutdown(drain=False, timeout=5.0))
        # Wake any stranded waiters (queued flights never dispatched).
        while True:
            flight = self.queue.pop()
            if flight is None:
                break
            if not flight.done.done():
                flight.done.set_result(
                    ("failed", None, "daemon shut down before dispatch"))

    def stats(self) -> Dict[str, Any]:
        """One JSON-able document for ``/metrics``."""
        data: Dict[str, Any] = {
            "uptime_s": round(time.time() - self.started_at, 3),
            "draining": self._draining,
            "inflight": len(self._flight_tasks),
            "counters": dict(self.counters),
            "queue": self.queue.stats(),
            "pool": self.pool.stats(),
        }
        if self.cache is not None:
            # counter_stats (not stats): /metrics is polled, so no disk
            # walk; includes hit/miss latency percentiles and warm_hits
            # already rides in pool.stats() above.
            data["cache"] = self.cache.counter_stats()
        return data
