"""Weighted-fair queueing and admission control for the service tier.

The daemon serves many tenants off one worker pool; a tenant that dumps
a thousand requests must not starve a tenant that sends one.  The
:class:`FairQueue` implements classic virtual-time weighted fair
queueing (start-time fair queueing, to be exact): each tenant holds its
own FIFO, each request is stamped with a *finish tag* ::

    start  = max(virtual_now, last_finish[tenant])
    finish = start + cost / weight

and ``pop()`` always hands out the backlogged request with the smallest
finish tag.  Tenants with equal weights interleave 1:1 no matter how
deep their backlogs are; a weight-2 tenant drains twice as fast.  The
virtual clock only advances to the start tag of the request being
served, so an idle tenant re-entering the fray starts "now" rather than
with banked credit from its idle past.

Admission control is depth-based and per-tenant: when a tenant's FIFO
is at ``depth`` the push raises :class:`QueueFull` and the service
either sheds the request to the degraded (but verified) trivial-mapping
path or rejects it with a typed ``overloaded`` error — never an
unbounded queue, never an opaque stall.

The queue is deliberately not thread-safe — it lives on the daemon's
event loop and is only touched from there.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Deque, Dict, Optional, Tuple

#: Queue depth per tenant unless the daemon overrides it.
DEFAULT_DEPTH = 64


class QueueFull(Exception):
    """A tenant's FIFO is at capacity; admission control must act."""

    def __init__(self, tenant: str, depth: int) -> None:
        super().__init__(
            f"tenant {tenant!r} queue is full ({depth} requests deep)")
        self.tenant = tenant
        self.depth = depth


class FairQueue:
    """Virtual-time weighted fair queue with bounded per-tenant depth."""

    def __init__(self, depth: int = DEFAULT_DEPTH,
                 default_weight: float = 1.0) -> None:
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.depth = depth
        self.default_weight = default_weight
        self._weights: Dict[str, float] = {}
        self._fifos: Dict[str, Deque[Tuple[float, Any]]] = {}
        #: Min-heap of (finish, seq, tenant) for tenants' *head* items.
        self._heads: list = []
        self._virtual = 0.0
        self._finish: Dict[str, float] = {}
        self._seq = itertools.count()
        self.pushed = 0
        self.popped = 0
        self.rejected = 0

    def set_weight(self, tenant: str, weight: float) -> None:
        if weight <= 0:
            raise ValueError("weight must be positive")
        self._weights[tenant] = weight

    def weight(self, tenant: str) -> float:
        return self._weights.get(tenant, self.default_weight)

    def __len__(self) -> int:
        return sum(len(q) for q in self._fifos.values())

    def depth_of(self, tenant: str) -> int:
        fifo = self._fifos.get(tenant)
        return len(fifo) if fifo else 0

    def push(self, tenant: str, item: Any, cost: float = 1.0) -> None:
        """Enqueue ``item`` for ``tenant``; raises :class:`QueueFull`
        when that tenant's FIFO is at capacity."""
        fifo = self._fifos.get(tenant)
        if fifo is None:
            fifo = self._fifos[tenant] = deque()
        if len(fifo) >= self.depth:
            self.rejected += 1
            raise QueueFull(tenant, self.depth)
        start = max(self._virtual, self._finish.get(tenant, 0.0))
        finish = start + max(cost, 1e-9) / self.weight(tenant)
        self._finish[tenant] = finish
        fifo.append((finish, item))
        if len(fifo) == 1:
            heapq.heappush(self._heads,
                           (finish, next(self._seq), tenant))
        self.pushed += 1

    def pop(self) -> Optional[Any]:
        """The backlogged item with the smallest finish tag, or None."""
        while self._heads:
            finish, _, tenant = heapq.heappop(self._heads)
            fifo = self._fifos.get(tenant)
            if not fifo or fifo[0][0] != finish:
                continue  # stale head (item already served)
            finish, item = fifo.popleft()
            # Serving at the head's tag pulls the virtual clock forward;
            # max() keeps it monotonic when tags arrive out of order.
            self._virtual = max(self._virtual, finish)
            if fifo:
                heapq.heappush(self._heads,
                               (fifo[0][0], next(self._seq), tenant))
            else:
                del self._fifos[tenant]
            self.popped += 1
            return item
        return None

    def stats(self) -> Dict[str, Any]:
        return {
            "queued": len(self),
            "tenants": {t: len(q) for t, q in self._fifos.items()},
            "pushed": self.pushed,
            "popped": self.popped,
            "rejected": self.rejected,
            "depth": self.depth,
        }
