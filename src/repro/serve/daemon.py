"""The ``repro serve`` daemon: sockets in front of the service core.

Two front-ends share one :class:`~repro.serve.service
.DecompositionService`:

* **unix socket** (``--socket``) — NDJSON both ways.  Each request is
  one JSON line; each reply frame is one JSON line.  Requests on one
  connection are pipelined: a client may write several lines and read
  the (id-tagged) frames as they settle.
* **HTTP** (``--port``) — a deliberately small hand-rolled HTTP/1.1
  server (no external dependencies): ``POST /decompose`` with the same
  JSON body (``"stream": true`` upgrades the reply to chunked NDJSON),
  ``GET /metrics`` and ``GET /healthz``.

Chaos sites (:mod:`repro.faults`): every ingress frame routes through
``server.accept`` and every egress frame through ``server.reply``.  An
injected *raise* on accept becomes a typed ``error`` frame (the
connection lives on); on reply the frame is dropped and counted — in
both cases the daemon keeps serving.  ``crash`` kinds genuinely kill
the process (that is what crash means) and are exercised against a
sacrificial daemon in the chaos suite; ``hang`` kinds stall the frame
but complete, the same slow-but-alive semantics as the batch tier's
parent-side sites.

Shutdown: SIGTERM/SIGINT (or :meth:`ServeDaemon.request_stop`) begins a
graceful drain — listeners close, requests already admitted settle,
the pool stops, the socket file is removed.  New requests during the
drain get a typed ``shutting-down`` error.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
from multiprocessing.util import register_after_fork
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple

from repro import faults
from repro.serve.protocol import (
    BadFrame,
    ServeError,
    ShuttingDown,
    TooLarge,
    default_max_frame_bytes,
    parse_request,
)
from repro.serve.service import DecompositionService

_HTTP_STATUS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    422: "Unprocessable Entity", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class _InheritedFdGuard:
    """Close daemon socket FDs inside forked pool workers.

    Pool workers fork from a live daemon, inheriting every open FD —
    including accepted client connections and the listeners.  A
    long-lived worker holding a client connection's FD keeps that
    socket open after the daemon closes its copy, so the client never
    sees EOF (and a worker holding the HTTP listener would keep the
    port bound after shutdown).  The daemon tracks its socket FDs here;
    :func:`multiprocessing.util.register_after_fork` closes the
    snapshot in every forked child before it starts working.
    """

    def __init__(self) -> None:
        self.fds: "set[int]" = set()
        register_after_fork(self, _InheritedFdGuard._close_in_child)

    def track(self, writer: asyncio.StreamWriter) -> Optional[int]:
        sock = writer.get_extra_info("socket")
        fd = sock.fileno() if sock is not None else -1
        if fd >= 0:
            self.fds.add(fd)
            return fd
        return None

    def untrack(self, fd: Optional[int]) -> None:
        if fd is not None:
            self.fds.discard(fd)

    def _close_in_child(self) -> None:
        for fd in list(self.fds):
            try:
                os.close(fd)
            except OSError:
                pass
        self.fds.clear()


class ServeDaemon:
    """Own the listeners, the connection tasks and the shutdown path."""

    def __init__(self, service: DecompositionService, *,
                 socket_path: Optional[str] = None,
                 host: str = "127.0.0.1",
                 port: Optional[int] = None,
                 allow_files: bool = False,
                 allow_test_hooks: bool = False,
                 max_frame_bytes: Optional[int] = None,
                 drain_timeout: float = 30.0) -> None:
        if socket_path is None and port is None:
            raise ValueError("need a unix --socket path, a --port, "
                             "or both")
        self.service = service
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.allow_files = allow_files
        self.allow_test_hooks = allow_test_hooks
        self.max_frame_bytes = (default_max_frame_bytes()
                                if max_frame_bytes is None
                                else max_frame_bytes)
        self.drain_timeout = drain_timeout
        #: Filled in once listeners are up: ("127.0.0.1", 43117).
        self.http_address: Optional[Tuple[str, int]] = None
        self.connections = 0
        self.frames = 0
        self.bad_frames = 0
        self.replies_dropped = 0
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._conn_tasks: "set[asyncio.Task]" = set()
        self._fd_guard = _InheritedFdGuard()

    # -- lifecycle ------------------------------------------------------

    async def run(self, ready: Optional[Callable[["ServeDaemon"], None]]
                  = None) -> None:
        """Serve until stopped, then drain.  ``ready`` fires (with the
        daemon) once the listeners are accepting — tests hook it."""
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        servers = []
        # Double the frame ceiling for the StreamReader limit so the
        # "too large" path is ours (typed), not a silent truncation.
        limit = self.max_frame_bytes * 2
        if self.socket_path is not None:
            path = Path(self.socket_path)
            if path.exists():
                path.unlink()
            servers.append(await asyncio.start_unix_server(
                self._handle_unix, path=str(path), limit=limit))
        if self.port is not None:
            http = await asyncio.start_server(
                self._handle_http, self.host, self.port, limit=limit)
            self.http_address = http.sockets[0].getsockname()[:2]
            servers.append(http)
        for server in servers:
            for sock in server.sockets:
                self._fd_guard.fds.add(sock.fileno())
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(signum, self._stop.set)
            except (ValueError, NotImplementedError, RuntimeError):
                pass  # not the main thread (tests) or no loop support
        if ready is not None:
            ready(self)
        try:
            await self._stop.wait()
        finally:
            # Drain: refuse new work, stop accepting, let admitted
            # requests settle, then stop the pool and clean up.
            self.service._draining = True
            for server in servers:
                server.close()
            for server in servers:
                await server.wait_closed()
            if self._conn_tasks:
                await asyncio.wait(list(self._conn_tasks),
                                   timeout=self.drain_timeout)
            await self.service.drain(timeout=self.drain_timeout)
            for task in list(self._conn_tasks):
                task.cancel()
            if self.socket_path is not None:
                try:
                    os.unlink(self.socket_path)
                except OSError:
                    pass

    def request_stop(self) -> None:
        """Begin a graceful drain; safe to call from any thread."""
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)

    def stats(self) -> Dict[str, Any]:
        data = self.service.stats()
        data["server"] = {
            "connections": self.connections,
            "frames": self.frames,
            "bad_frames": self.bad_frames,
            "replies_dropped": self.replies_dropped,
        }
        return data

    # -- frame plumbing -------------------------------------------------

    def _send_line(self, writer: asyncio.StreamWriter,
                   frame: Dict[str, Any], chunked: bool = False) -> None:
        """One egress frame, through the ``server.reply`` chaos site.

        An injected raise drops (and counts) the reply — the daemon
        never dies for failing to speak.
        """
        data = (json.dumps(frame, separators=(",", ":")) + "\n").encode()
        try:
            data = faults.fault_point("server.reply", data)
        except (faults.FaultInjected, MemoryError):
            self.replies_dropped += 1
            return
        if writer.is_closing():
            return
        if chunked:
            writer.write(b"%x\r\n" % len(data) + data + b"\r\n")
        else:
            writer.write(data)

    def _decode(self, raw: bytes) -> Any:
        """Ingress bytes -> decoded JSON, through ``server.accept``."""
        try:
            raw = faults.fault_point("server.accept", raw)
        except (faults.FaultInjected, MemoryError) as exc:
            raise BadFrame(f"ingress fault: {exc}") from exc
        if len(raw) > self.max_frame_bytes:
            raise TooLarge(f"frame over the {self.max_frame_bytes}-byte "
                           f"ceiling")
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise BadFrame(f"frame is not valid JSON: {exc}") from exc

    async def _serve_obj(self, obj: Any,
                         emit: Callable[[Dict[str, Any]], None]
                         ) -> Dict[str, Any]:
        """One decoded request object -> its final frame.  All failures
        come back as typed error frames; nothing raises out of here."""
        request_id = obj.get("id") if isinstance(obj, dict) else None
        if not isinstance(request_id, str):
            request_id = None
        try:
            if self.service.draining:
                raise ShuttingDown("daemon is draining")
            request = parse_request(
                obj, allow_files=self.allow_files,
                allow_test_hooks=self.allow_test_hooks,
                max_body_bytes=self.max_frame_bytes)
            return await self.service.handle(request, emit)
        except ServeError as err:
            self.bad_frames += 1
            return err.as_frame(request_id)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 — the daemon outlives bugs
            self.bad_frames += 1
            err = ServeError(f"{type(exc).__name__}: {exc}")
            return err.as_frame(request_id)

    # -- unix socket front-end ------------------------------------------

    async def _handle_unix(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        self.connections += 1
        conn_fd = self._fd_guard.track(writer)
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        pipelined: "set[asyncio.Task]" = set()
        try:
            while True:
                try:
                    raw = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # The line blew the stream limit; NDJSON cannot be
                    # resynced past a truncated line, so reply and close.
                    self.bad_frames += 1
                    self._send_line(writer, TooLarge(
                        f"frame over the {self.max_frame_bytes}-byte "
                        f"ceiling").as_frame())
                    break
                if not raw:
                    break
                if not raw.strip():
                    continue
                self.frames += 1
                line_task = asyncio.ensure_future(
                    self._serve_unix_line(raw.strip(), writer))
                pipelined.add(line_task)
                line_task.add_done_callback(pipelined.discard)
            if pipelined:
                await asyncio.wait(list(pipelined))
            await self._flush(writer)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            for line_task in list(pipelined):
                line_task.cancel()
            self._fd_guard.untrack(conn_fd)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _serve_unix_line(self, line: bytes,
                               writer: asyncio.StreamWriter) -> None:
        try:
            obj = self._decode(line)
        except ServeError as err:
            self.bad_frames += 1
            self._send_line(writer, err.as_frame())
            await self._flush(writer)
            return
        final = await self._serve_obj(
            obj, lambda frame: self._send_line(writer, frame))
        self._send_line(writer, final)
        await self._flush(writer)

    @staticmethod
    async def _flush(writer: asyncio.StreamWriter) -> None:
        try:
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    # -- HTTP front-end -------------------------------------------------

    async def _handle_http(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        self.connections += 1
        conn_fd = self._fd_guard.track(writer)
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            await self._serve_http(reader, writer)
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            pass
        finally:
            self._fd_guard.untrack(conn_fd)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _serve_http(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        try:
            request_line = await reader.readline()
        except (asyncio.LimitOverrunError, ValueError):
            return self._http_reply(writer, 400,
                                    {"error": "bad-frame",
                                     "message": "oversized request line"})
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            return self._http_reply(writer, 400,
                                    {"error": "bad-frame",
                                     "message": "malformed request line"})
        method, target, _ = parts
        headers: Dict[str, str] = {}
        while True:
            try:
                line = await reader.readline()
            except (asyncio.LimitOverrunError, ValueError):
                return self._http_reply(
                    writer, 400, {"error": "bad-frame",
                                  "message": "oversized header"})
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
            if len(headers) > 64:
                return self._http_reply(
                    writer, 400, {"error": "bad-frame",
                                  "message": "too many headers"})
        if method == "GET" and target in ("/metrics", "/healthz"):
            if target == "/healthz":
                return self._http_reply(
                    writer, 200, {"ok": not self.service.draining,
                                  "draining": self.service.draining})
            from repro.obs.metrics import serve_metrics
            return self._http_reply(writer, 200,
                                    serve_metrics(self.stats()))
        if target != "/decompose":
            return self._http_reply(writer, 404,
                                    {"error": "bad-request",
                                     "message": f"no route {target!r}"})
        if method != "POST":
            return self._http_reply(
                writer, 405, {"error": "bad-request",
                              "message": "POST /decompose only"})
        try:
            length = int(headers.get("content-length", ""))
        except ValueError:
            return self._http_reply(
                writer, 400, {"error": "bad-frame",
                              "message": "missing/bad Content-Length"})
        if length > self.max_frame_bytes:
            return self._http_reply(
                writer, 413,
                {"error": "too-large",
                 "message": f"body over the {self.max_frame_bytes}-byte "
                            f"ceiling"})
        body = await reader.readexactly(length)
        self.frames += 1
        try:
            obj = self._decode(body)
        except ServeError as err:
            self.bad_frames += 1
            return self._http_reply(writer, err.http_status,
                                    err.as_frame())
        streaming = isinstance(obj, dict) and obj.get("stream") is True
        if not streaming:
            final = await self._serve_obj(obj, lambda frame: None)
            status = 200
            if final.get("event") == "error":
                status = self._error_status(final.get("error"))
            return self._http_reply(writer, status, final)
        # Streaming reply: chunked NDJSON, one frame per chunk.  The
        # status line is committed before the outcome is known, so
        # errors ride inside the stream as frames (HTTP streaming's
        # usual trade).
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"Connection: close\r\n\r\n")
        final = await self._serve_obj(
            obj, lambda frame: self._send_line(writer, frame,
                                               chunked=True))
        self._send_line(writer, final, chunked=True)
        writer.write(b"0\r\n\r\n")
        await self._flush(writer)

    @staticmethod
    def _error_status(code: Any) -> int:
        for cls in ServeError.__subclasses__():
            if cls.code == code:
                return cls.http_status
        return 500

    def _http_reply(self, writer: asyncio.StreamWriter, status: int,
                    payload: Dict[str, Any]) -> None:
        body = (json.dumps(payload, separators=(",", ":")) + "\n"
                ).encode()
        try:
            body = faults.fault_point("server.reply", body)
        except (faults.FaultInjected, MemoryError):
            self.replies_dropped += 1
            body = b"{}\n"
        reason = _HTTP_STATUS.get(status, "Unknown")
        writer.write(
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n".encode() + body)
