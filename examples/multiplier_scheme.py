#!/usr/bin/env python3
"""Section 6.1 multiplier experiment: pm_n and the column-wise scheme.

Decomposes the partial multiplier ``pm_n`` (inputs = partial-product
bits) with and without the don't-care assignment and compares against
the Wallace-tree multiplier.  The paper reports the no-DC circuit costs
~75% more gates for ``pm_4``, and the scheme scales as
``n^2 + O(n log^2 n)`` gates vs ``10 n^2 - 20 n`` for Wallace.

Run:  python examples/multiplier_scheme.py [n]
"""

import random
import sys

from repro.arith.multipliers import (
    partial_multiplier_function,
    wallace_tree_multiplier,
)
from repro.core import synthesize_two_input_gates


def verify_pm(net, n, samples=200):
    rng = random.Random(0)
    for _ in range(samples):
        matrix = {(i, j): rng.randint(0, 1)
                  for i in range(n) for j in range(n)}
        bits = {f"p{i}_{j}": matrix[i, j]
                for i in range(n) for j in range(n)}
        out = net.eval_outputs(bits)
        got = sum(out[f"r{w}"] << w for w in range(2 * n))
        if got != sum(v << (i + j) for (i, j), v in matrix.items()):
            return False
    return True


def main():
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    func = partial_multiplier_function(n)
    print(f"pm_{n}: {func.num_inputs} inputs, {func.num_outputs} outputs")

    with_dc = synthesize_two_input_gates(func, use_dontcares=True)
    assert verify_pm(with_dc, n), "decomposed pm is wrong!"
    print(f"mulop-dc : {with_dc.gate_count} gates, depth {with_dc.depth()}")

    without = synthesize_two_input_gates(func, use_dontcares=False)
    assert verify_pm(without, n), "no-DC pm is wrong!"
    penalty = (without.gate_count - with_dc.gate_count) / with_dc.gate_count
    print(f"no DC    : {without.gate_count} gates "
          f"(+{100 * penalty:.0f}% — paper: +75%)")

    wallace = wallace_tree_multiplier(n, from_partial_products=True)
    print(f"Wallace  : {wallace.gate_count} gates, depth {wallace.depth()}")


if __name__ == "__main__":
    main()
