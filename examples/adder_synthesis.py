#!/usr/bin/env python3
"""Figure 2 experiment: automatic two-input-gate synthesis of adders.

Decomposes the n-bit adder (balanced communication-minimising bound
sets, then minimal gate trees per 3-input block) and compares the gate
count against the conditional-sum adder — the comparison of the paper's
Figure 2 (paper: 49 gates vs 90 for n = 8).

Run:  python examples/adder_synthesis.py [n ...]
"""

import random
import sys

from repro.arith.adders import adder_function, conditional_sum_adder, \
    ripple_carry_adder
from repro.core import synthesize_two_input_gates


def verify_adder(net, n, samples=300):
    rng = random.Random(0)
    for _ in range(samples):
        x = rng.randrange(1 << n)
        y = rng.randrange(1 << n)
        bits = {f"x{i}": (x >> i) & 1 for i in range(n)}
        bits.update({f"y{i}": (y >> i) & 1 for i in range(n)})
        out = net.eval_outputs(bits)
        if sum(out[f"s{i}"] << i for i in range(n + 1)) != x + y:
            return False
    return True


def main():
    sizes = [int(a) for a in sys.argv[1:]] or [2, 4, 8]
    print(f"{'n':>3s} {'decomposed':>11s} {'cond-sum':>9s} "
          f"{'ripple':>7s}   (two-input gates)")
    for n in sizes:
        ours = synthesize_two_input_gates(adder_function(n))
        csa = conditional_sum_adder(n)
        rca = ripple_carry_adder(n)
        assert verify_adder(ours, n), "decomposed adder is wrong!"
        print(f"{n:3d} {ours.gate_count:11d} {csa.gate_count:9d} "
              f"{rca.gate_count:7d}")
    print("\npaper (n=8): decomposed 49, conditional-sum 90")


if __name__ == "__main__":
    main()
