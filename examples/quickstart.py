#!/usr/bin/env python3
"""Quickstart: decompose a multi-output function into XC3000 CLBs.

This walks the paper's core flow on a small example:

1. define a multi-output Boolean function (here: a 7-input bundle with a
   symmetric output and an arithmetic output);
2. run ``mulop-dc`` — recursive multi-output decomposition with the
   three-step don't-care assignment;
3. run the ``mulopII`` baseline (no don't-care exploitation);
4. compare LUT / CLB counts and verify the mapped network.

Run:  python examples/quickstart.py
"""

from repro import BDD, MultiFunction, map_to_xc3000


def build_function():
    """A 7-input, 3-output bundle mixing symmetric and arithmetic logic."""
    bdd = BDD(7)
    inputs = list(range(7))

    def spec(*bits):
        weight = sum(bits)
        threshold = 1 if 2 <= weight <= 5 else 0         # symmetric window
        parity = weight & 1                              # parity
        value = sum(b << i for i, b in enumerate(bits))
        compare = 1 if value % 11 < 5 else 0             # irregular logic
        return [threshold, parity, compare]

    return MultiFunction.from_callable(bdd, inputs, 3, spec)


def main():
    func = build_function()
    print(f"function: {func.num_inputs} inputs, {func.num_outputs} outputs")

    result = map_to_xc3000(func, use_dontcares=True)
    print(f"mulop-dc : {result.summary()}")

    baseline = map_to_xc3000(func, use_dontcares=False)
    print(f"mulopII  : {baseline.summary()}")

    # Verify the don't-care flow's network against the specification.
    mismatches = 0
    for k in range(1 << func.num_inputs):
        bits = [(k >> (func.num_inputs - 1 - i)) & 1
                for i in range(func.num_inputs)]
        expected = func.eval(dict(zip(func.inputs, bits)))
        got = result.network.eval_outputs(dict(zip(func.input_names, bits)))
        for name, value in zip(func.output_names, expected):
            if value is not None and got[name] != value:
                mismatches += 1
    print(f"verification: {mismatches} mismatches over "
          f"{1 << func.num_inputs} input patterns")

    print("\nmapped network as BLIF:")
    print(result.network.to_blif()[:400] + "  ...")


if __name__ == "__main__":
    main()
