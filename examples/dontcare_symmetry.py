#!/usr/bin/env python3
"""The three-step don't-care assignment on a worked example (Section 5).

Builds an incompletely specified two-output function, then shows:

* step 1 — symmetry-maximising assignment creating symmetry groups;
* step 2 — joint-compatibility assignment shrinking the lower bound on
  the total number of decomposition functions;
* step 3 — per-output class merging (Chang/Marek-Sadowska);
* the final common decomposition functions and the composition
  functions' unused-code don't cares.

Run:  python examples/dontcare_symmetry.py
"""

from repro.bdd.manager import BDD
from repro.boolfunc.spec import ISF
from repro.decomp.bound_set import select_bound_set
from repro.decomp.compat import classes_for
from repro.decomp.dontcare import (
    assign_step1_symmetry,
    assign_step2_sharing,
    assign_step3_single,
)
from repro.decomp.multi import select_common_alphas, total_alpha_count


def isf_from_spec(bdd, spec, variables):
    onset = [1 if v == 1 else 0 for v in spec]
    upper = [0 if v == 0 else 1 for v in spec]
    return ISF.create(bdd,
                      bdd.from_truth_table(onset, variables),
                      bdd.from_truth_table(upper, variables))


def main():
    bdd = BDD(5)
    variables = [0, 1, 2, 3, 4]
    # Two outputs over 5 inputs; '?' marks don't cares.  f1 is nearly
    # symmetric in (x0, x1, x2); f2 shares structure with f1.
    import random
    rng = random.Random(2024)
    spec1 = [1 if bin(k).count("1") >= 3 else 0 for k in range(32)]
    spec2 = [1 if bin(k ^ 5).count("1") >= 3 else 0 for k in range(32)]
    for spec in (spec1, spec2):
        for _ in range(8):
            spec[rng.randrange(32)] = None
    f1 = isf_from_spec(bdd, spec1, variables)
    f2 = isf_from_spec(bdd, spec2, variables)
    outputs = [f1, f2]
    print("before: DC minterms per output:",
          [32 - bdd.sat_count(o.care_set(bdd), 5) for o in outputs])

    outputs, groups = assign_step1_symmetry(bdd, outputs, variables)
    print(f"step 1: common symmetry groups = {groups}")

    bound, score = select_bound_set(bdd, outputs, variables, 3,
                                    groups=groups)
    bound = bound or (0, 1, 2)
    print(f"bound set = {bound}")

    joint_before = classes_for(bdd, outputs, bound)
    outputs, joint = assign_step2_sharing(bdd, outputs, bound)
    print(f"step 2: joint ncc = {joint.ncc}, lower bound on total "
          f"decomposition functions = {joint.min_r}")

    outputs, per_output = assign_step3_single(bdd, outputs, bound)
    for i, cls in enumerate(per_output):
        print(f"step 3: output {i}: ncc = {cls.ncc}, r = {cls.min_r}")

    pool, encodings = select_common_alphas(bdd, per_output)
    print(f"common decomposition functions: {total_alpha_count(encodings)}"
          f" (sum of per-output r = {sum(e.r for e in encodings)})")
    for i, enc in enumerate(encodings):
        print(f"  output {i} uses alphas {enc.alpha_indices} "
              f"with class codes {enc.codes}")


if __name__ == "__main__":
    main()
