#!/usr/bin/env python3
"""FPGA mapping flow on the paper's benchmark circuits (Table 1 style).

Maps a selection of benchmark circuits to the Xilinx XC3000
(5-input LUTs, CLB pairing by maximum-cardinality matching) with both
drivers and prints Table-1-style rows:

    circuit   i   o   mulopII   mulop-dc

Run:  python examples/fpga_flow.py [circuit ...]
"""

import sys

from repro.bench.registry import BENCHMARKS, benchmark, benchmark_names
from repro.core import map_to_xc3000

DEFAULT_CIRCUITS = ["rd73", "rd84", "9sym", "z4ml", "misex1", "clip",
                    "sao2", "5xp1", "f51m", "alu2"]


def main():
    names = sys.argv[1:] or DEFAULT_CIRCUITS
    print(f"{'circuit':9s} {'i':>4s} {'o':>4s} {'mulopII':>9s} "
          f"{'mulop-dc':>9s}")
    total_ii = total_dc = 0
    for name in names:
        if name not in BENCHMARKS:
            print(f"{name:9s}  (unknown; see `python -m repro list`)")
            continue
        func = benchmark(name)
        baseline = map_to_xc3000(func, use_dontcares=False)
        with_dc = map_to_xc3000(func, use_dontcares=True)
        total_ii += baseline.clb_count
        total_dc += with_dc.clb_count
        print(f"{name:9s} {func.num_inputs:4d} {func.num_outputs:4d} "
              f"{baseline.clb_count:9d} {with_dc.clb_count:9d}")
    print(f"{'total':9s} {'':4s} {'':4s} {total_ii:9d} {total_dc:9d}")


if __name__ == "__main__":
    main()
