#!/usr/bin/env python3
"""Structural netlist in, CLBs out — the full front-to-back pipeline.

1. parse a multi-level BLIF netlist structurally (no flattening);
2. clean it up (sweep dangling logic, propagate constants);
3. collapse into per-output BDDs;
4. run the paper's decomposition flow and formally verify the mapping.

Run:  python examples/netlist_flow.py
"""

from repro.core import map_to_xc3000
from repro.network import Network, constant_propagate, sweep
from repro.verify.equiv import check_extension

BLIF = """\
.model alu_fragment
.inputs a0 a1 b0 b1 sel en
.outputs r0 r1 valid
# half adder on bit 0
.names a0 b0 s0
10 1
01 1
.names a0 b0 c0
11 1
# full adder slice on bit 1
.names a1 b1 s1x
10 1
01 1
.names s1x c0 s1
10 1
01 1
.names a1 b1 c0 c1
11- 1
1-1 1
-11 1
# logical alternative
.names a0 b0 l0
11 1
.names a1 b1 l1
11 1
# select between the two
.names sel s0 l0 r0raw
01- 1
1-1 1
.names sel s1 l1 r1raw
01- 1
1-1 1
# enable gating
.names en r0raw r0
11 1
.names en r1raw r1
11 1
.names en valid
1 1
# dangling logic (will be swept)
.names a0 a1 dead
10 1
.end
"""


def main():
    net = Network.from_blif(BLIF)
    print(f"parsed : {net!r}")
    removed = sweep(net)
    folds = constant_propagate(net)
    print(f"cleanup: removed {removed} dangling nodes, "
          f"{folds} constant folds")
    print(f"cleaned: {net!r}")

    func = net.collapse()
    result = map_to_xc3000(func)
    print(f"mapped : {result.summary()}")

    verdict = check_extension(func, result.network)
    print(f"formal verification: "
          f"{'EQUIVALENT' if verdict else 'MISMATCH — ' + str(verdict)}")

    # Cross-check the structural simulation against the mapped network.
    import itertools
    mismatch = 0
    for bits in itertools.product((0, 1), repeat=6):
        assignment = dict(zip(net.inputs, bits))
        if net.eval_outputs(assignment) != \
                result.network.eval_outputs(assignment):
            mismatch += 1
    print(f"simulation cross-check: {mismatch} mismatches over 64 vectors")


if __name__ == "__main__":
    main()
