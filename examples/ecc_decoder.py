#!/usr/bin/env python3
"""Decomposing an error-correcting decoder (a C499-scale-model).

The ISCAS-85 circuit C499 of the paper's Table 1 is a 32-bit
single-error-correcting decoder.  This example builds the same structure
at a size comfortable for an interactive run — Hamming-style SEC over
8 data bits with 4 check bits — maps it with both drivers, and
demonstrates the correction behaviour end-to-end on the mapped network.

Run:  python examples/ecc_decoder.py
"""

import random

from repro import BDD, ISF, MultiFunction, map_to_xc3000

DATA_BITS = 8
CHECK_BITS = 4

# Distinct >=2-ones syndrome patterns, one per data bit.
PATTERNS = []
_value = 0
while len(PATTERNS) < DATA_BITS:
    _value += 1
    if bin(_value).count("1") >= 2 and _value < (1 << CHECK_BITS):
        PATTERNS.append(_value)


def build_decoder() -> MultiFunction:
    bdd = BDD(0)
    data = [bdd.add_var(f"d{i}") for i in range(DATA_BITS)]
    check = [bdd.add_var(f"c{b}") for b in range(CHECK_BITS)]
    syndrome = []
    for b in range(CHECK_BITS):
        s = bdd.var(check[b])
        for i, pattern in enumerate(PATTERNS):
            if (pattern >> b) & 1:
                s = bdd.apply_xor(s, bdd.var(data[i]))
        syndrome.append(s)
    outputs = []
    for i, pattern in enumerate(PATTERNS):
        match = BDD.TRUE
        for b in range(CHECK_BITS):
            lit = syndrome[b] if (pattern >> b) & 1 \
                else bdd.apply_not(syndrome[b])
            match = bdd.apply_and(match, lit)
        outputs.append(ISF.complete(
            bdd.apply_xor(bdd.var(data[i]), match)))
    return MultiFunction(bdd, data + check, outputs,
                         output_names=[f"o{i}" for i in range(DATA_BITS)])


def encode(data_bits):
    check = []
    for b in range(CHECK_BITS):
        parity = 0
        for i, pattern in enumerate(PATTERNS):
            if (pattern >> b) & 1:
                parity ^= data_bits[i]
        check.append(parity)
    return check


def main():
    func = build_decoder()
    print(f"SEC decoder: {func.num_inputs} inputs, "
          f"{func.num_outputs} outputs "
          f"(scale model of the paper's C499 row)")
    for dc_mode, label in ((False, "mulopII "), (True, "mulop-dc")):
        result = map_to_xc3000(func, use_dontcares=dc_mode)
        print(f"{label}: {result.summary()}")
        net = result.network

    rng = random.Random(7)
    corrected = 0
    trials = 40
    for _ in range(trials):
        data = [rng.randint(0, 1) for _ in range(DATA_BITS)]
        check = encode(data)
        received = list(data)
        flip = rng.randrange(DATA_BITS)
        received[flip] ^= 1  # inject a single-bit error
        assignment = {f"d{i}": received[i] for i in range(DATA_BITS)}
        assignment.update({f"c{b}": check[b] for b in range(CHECK_BITS)})
        out = net.eval_outputs(assignment)
        if [out[f"o{i}"] for i in range(DATA_BITS)] == data:
            corrected += 1
    print(f"single-bit errors corrected by the mapped network: "
          f"{corrected}/{trials}")


if __name__ == "__main__":
    main()
