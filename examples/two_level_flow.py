#!/usr/bin/env python3
"""From raw minterms through espresso to the FPGA flow.

The MCNC benchmark PLAs the paper uses were espresso-minimised covers.
This example shows the whole realistic pipeline in-repo:

1. specify a function as raw minterms with don't cares;
2. minimise it with the espresso-style two-level minimiser;
3. turn the cover into a PLA, parse it back, and run the paper's
   decomposition flow (mulop-dc vs mulopII) on the result.

Run:  python examples/two_level_flow.py
"""

import random

from repro.boolfunc.pla import parse_pla
from repro.core import map_to_xc3000
from repro.twolevel.cubes import PCover
from repro.twolevel.espresso import espresso


def main():
    n = 6
    rng = random.Random(2026)
    onset = sorted(m for m in range(1 << n) if (m * 37 + 11) % 7 < 2)
    dcset = sorted(m for m in range(1 << n)
                   if m not in set(onset) and rng.random() < 0.15)
    print(f"raw spec: {len(onset)} onset minterms, {len(dcset)} DC "
          f"minterms over {n} inputs")

    cover = espresso(PCover.from_minterms(onset, n),
                     PCover.from_minterms(dcset, n))
    print(f"espresso: {len(cover)} cubes, "
          f"{cover.literal_count()} literals")

    # Write the minimised cover as a PLA and run the FPGA flow.
    lines = [f".i {n}", ".o 1", ".type fd"]
    for cube in cover:
        lines.append(f"{cube} 1")
    for m in dcset:
        bits = format(m, f"0{n}b")
        lines.append(f"{bits} -")
    lines.append(".e")
    func = parse_pla("\n".join(lines))

    final = None
    for dc_mode, label in ((True, "mulop-dc"), (False, "mulopII ")):
        result = map_to_xc3000(func, use_dontcares=dc_mode)
        print(f"{label}: {result.summary()}")
        if dc_mode:
            final = result

    # Verify the don't-care flow's network against the original spec.
    mismatches = 0
    for m in range(1 << n):
        if m in set(dcset):
            continue
        bits = [(m >> (n - 1 - i)) & 1 for i in range(n)]
        got = final.network.eval_outputs(dict(zip(func.input_names, bits)))
        if got[func.output_names[0]] != (1 if m in set(onset) else 0):
            mismatches += 1
    print(f"verification: {mismatches} care-set mismatches")


if __name__ == "__main__":
    main()
